//! The latch-up rule check (Fig. 1 of the paper).
//!
//! *"This rule determines if temporary rectangles which are placed around
//! the substrate contacts enclose all locos areas of MOS-transistors. ...
//! If after examining all enclosing rectangles no parts of the solid
//! rectangles are remaining, the latch-up rule is fulfilled."*
//!
//! The algorithm is exactly the figure's: keep a [`Region`] of active-area
//! rectangles; for each substrate contact, subtract its temporary coverage
//! rectangle (contact inflated by the technology's latch-up distance);
//! every subtraction resolves one of the 16 overlap cases into remainder
//! rectangles. The rule passes when nothing remains.

use amgen_core::IntoGenCtx;
use amgen_db::{LayoutObject, ShapeRole};
use amgen_geom::{Coord, Rect, Region};

use crate::violation::{Violation, ViolationKind};

/// The temporary coverage rectangles of all substrate contacts.
pub fn coverage_rects(ctx: impl IntoGenCtx, obj: &LayoutObject) -> Vec<Rect> {
    let d = ctx.into_gen_ctx().latchup_distance();
    obj.shapes()
        .iter()
        .filter(|s| s.role == ShapeRole::SubstrateContact)
        .map(|s| s.rect.inflated(d))
        .collect()
}

/// The active-area region that must be covered.
pub fn active_region(obj: &LayoutObject) -> Region {
    obj.shapes()
        .iter()
        .filter(|s| s.role == ShapeRole::DeviceActive)
        .map(|s| s.rect)
        .collect()
}

/// Runs the latch-up check, returning the **uncovered remainder** — empty
/// when the rule is fulfilled. This exposes the intermediate result of
/// Fig. 1 for inspection and for the reproduction harness.
///
/// Runs on the object's [spatial index](LayoutObject::spatial_index):
/// each active rectangle consults only the substrate contacts within
/// latch-up distance instead of the whole-chip contact list, turning the
/// check sub-quadratic. The result is byte-identical to the sequential
/// scan ([`latchup_remainder_scan`]) — see that function for the
/// equivalence argument.
pub fn latchup_remainder(ctx: impl IntoGenCtx, obj: &LayoutObject) -> Region {
    let ctx = ctx.into_gen_ctx();
    let d = ctx.latchup_distance();
    if d == 0 {
        // Technology does not state the rule: vacuously fulfilled.
        return Region::new();
    }
    latchup_remainder_indexed(d, obj)
}

/// The pre-index sequential pass of Fig. 1: subtract every contact's
/// coverage rectangle from the global active region, in shape order.
/// Kept as the reference the indexed path is equivalence-tested against.
///
/// The indexed path is byte-identical because `subtract_rect` replaces
/// each fragment by its remainder pieces *in place*: fragments of one
/// active rectangle stay contiguous and in source order for the whole
/// pass, a cover that does not overlap a fragment maps it to itself, and
/// the global early exit only skips covers that could no longer change
/// anything. Folding each active rectangle independently over the same
/// cover order therefore produces the same final rectangle sequence.
#[doc(hidden)]
pub fn latchup_remainder_scan(ctx: impl IntoGenCtx, obj: &LayoutObject) -> Region {
    let ctx = ctx.into_gen_ctx();
    let mut remaining = active_region(obj);
    if ctx.latchup_distance() == 0 {
        return Region::new();
    }
    for cover in coverage_rects(&ctx, obj) {
        remaining.subtract_rect(cover);
        if remaining.is_empty() {
            break;
        }
    }
    remaining
}

/// Index-backed latch-up: for each active rectangle, query the contacts
/// whose coverage can reach it (window = rect inflated by the latch-up
/// distance), take the no-remainder fast path when one cover contains
/// the rectangle outright, and otherwise subtract the candidate covers
/// in shape order.
fn latchup_remainder_indexed(d: Coord, obj: &LayoutObject) -> Region {
    let ix = obj.spatial_index();
    let contacts = ix
        .role(ShapeRole::SubstrateContact)
        .expect("role is indexed");
    let shapes = obj.shapes();
    let mut out = Region::new();
    let mut cand: Vec<u32> = Vec::new();
    let mut frags: Vec<Rect> = Vec::new();
    let mut next: Vec<Rect> = Vec::new();
    for s in shapes {
        if s.role != ShapeRole::DeviceActive || s.rect.is_empty() {
            continue;
        }
        let a = s.rect;
        // `cover ∩ a ≠ ∅ ⇔ contact ∩ a.inflated(d) ≠ ∅`: one window
        // query finds every contact whose coverage can touch `a`.
        let window = a.inflated(d);
        // Fast path: a single containing cover leaves no remainder no
        // matter in which order covers would have been subtracted.
        if contacts.any_candidate(&window, |_, c| c.inflated(d).contains_rect(&a)) {
            continue;
        }
        contacts.query_into(&window, &mut cand);
        frags.clear();
        frags.push(a);
        for &j in &cand {
            let cover = shapes[j as usize].rect.inflated(d);
            next.clear();
            for f in &frags {
                next.extend(f.subtract(&cover));
            }
            std::mem::swap(&mut frags, &mut next);
            if frags.is_empty() {
                break;
            }
        }
        for f in &frags {
            out.push(*f);
        }
    }
    out
}

/// The latch-up check as violations: one per uncovered remainder
/// rectangle — the paper's *"additional substrate contacts have to be
/// inserted"* diagnostics.
pub fn check_latchup(ctx: impl IntoGenCtx, obj: &LayoutObject) -> Vec<Violation> {
    let ctx = ctx.into_gen_ctx();
    ctx.metrics.add_drc_checks(1);
    let mut span = ctx.span(amgen_core::Stage::Drc, || "latchup");
    let remaining = latchup_remainder(&ctx, obj);
    span.arg("uncovered", remaining.rects().len());
    drop(span);
    violations(&ctx, remaining)
}

/// [`check_latchup`] on the sequential scan ([`latchup_remainder_scan`]),
/// for the byte-identity parity baseline.
#[doc(hidden)]
pub fn check_latchup_scan(ctx: impl IntoGenCtx, obj: &LayoutObject) -> Vec<Violation> {
    let ctx = ctx.into_gen_ctx();
    let remaining = latchup_remainder_scan(&ctx, obj);
    violations(&ctx, remaining)
}

fn violations(ctx: &amgen_core::GenCtx, remaining: Region) -> Vec<Violation> {
    remaining
        .rects()
        .iter()
        .map(|&rect| Violation {
            kind: ViolationKind::LatchUp,
            rect,
            message: format!(
                "active area not within {} of a substrate contact",
                ctx.latchup_distance()
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_db::Shape;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn setup() -> (Tech, amgen_tech::Layer, amgen_tech::Layer) {
        let t = Tech::bicmos_1u();
        let pdiff = t.layer("pdiff").unwrap();
        (t.clone(), pdiff, t.layer("ndiff").unwrap())
    }

    fn active(l: amgen_tech::Layer, r: Rect) -> Shape {
        Shape::new(l, r).with_role(ShapeRole::DeviceActive)
    }

    fn subcon(l: amgen_tech::Layer, r: Rect) -> Shape {
        Shape::new(l, r).with_role(ShapeRole::SubstrateContact)
    }

    #[test]
    fn covered_active_passes() {
        let (t, pdiff, _) = setup();
        let mut obj = LayoutObject::new("x");
        obj.push(active(pdiff, Rect::new(0, 0, um(10), um(4))));
        obj.push(subcon(pdiff, Rect::new(um(12), 0, um(14), um(2))));
        // Latch-up distance is 50 um: one contact covers everything.
        assert!(check_latchup(&t, &obj).is_empty());
    }

    #[test]
    fn distant_active_fails() {
        let (t, pdiff, _) = setup();
        let d = t.latchup_distance();
        let mut obj = LayoutObject::new("x");
        obj.push(active(pdiff, Rect::new(0, 0, um(10), um(4))));
        // Contact far beyond the coverage distance.
        obj.push(subcon(
            pdiff,
            Rect::new(um(12) + 2 * d, 0, um(14) + 2 * d, um(2)),
        ));
        let v = check_latchup(&t, &obj);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::LatchUp);
    }

    #[test]
    fn no_contacts_at_all_fails() {
        let (t, pdiff, _) = setup();
        let mut obj = LayoutObject::new("x");
        obj.push(active(pdiff, Rect::new(0, 0, um(10), um(4))));
        assert_eq!(check_latchup(&t, &obj).len(), 1);
    }

    #[test]
    fn no_active_area_passes_vacuously() {
        let (t, pdiff, _) = setup();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(pdiff, Rect::new(0, 0, um(10), um(4))));
        assert!(check_latchup(&t, &obj).is_empty());
    }

    #[test]
    fn partial_coverage_reports_the_remainder() {
        let (t, pdiff, _) = setup();
        let d = t.latchup_distance();
        let mut obj = LayoutObject::new("x");
        // A long active stripe: 3 * d long, contact at the west end only.
        obj.push(active(pdiff, Rect::new(0, 0, 3 * d, um(4))));
        obj.push(subcon(pdiff, Rect::new(-um(2), 0, 0, um(2))));
        let rem = latchup_remainder(&t, &obj);
        assert!(!rem.is_empty());
        // Exactly the east part beyond x = d is uncovered.
        assert_eq!(rem.bbox().x0, d);
        assert_eq!(rem.bbox().x1, 3 * d);
    }

    #[test]
    fn two_contacts_jointly_cover_like_fig1() {
        let (t, pdiff, _) = setup();
        let d = t.latchup_distance();
        let mut obj = LayoutObject::new("x");
        obj.push(active(pdiff, Rect::new(0, 0, 3 * d, um(4))));
        obj.push(subcon(pdiff, Rect::new(-um(2), 0, 0, um(2))));
        obj.push(subcon(pdiff, Rect::new(2 * d, 0, 2 * d + um(2), um(2))));
        assert!(check_latchup(&t, &obj).is_empty());
    }

    /// The indexed path must reproduce the sequential scan byte for
    /// byte — same remainder rectangles, same order — on workloads that
    /// exercise full coverage, no coverage, partial multi-fragment
    /// remainders and the overlap corner cases.
    #[test]
    fn indexed_matches_scan_byte_for_byte() {
        let (t, pdiff, _) = setup();
        let d = t.latchup_distance();
        let mut s = 0x5eed_u64;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for trial in 0..30 {
            let mut obj = LayoutObject::new("x");
            let n_active = 1 + (next() % 40) as i64;
            let n_contacts = (next() % 12) as i64;
            for i in 0..n_active {
                let x = i * d / 2 + (next() % (d as u64 / 4)) as i64;
                let y = (next() % (2 * d as u64)) as i64 - d;
                let w = 100 + (next() % (3 * d as u64)) as i64;
                let h = 100 + (next() % (d as u64)) as i64;
                obj.push(active(pdiff, Rect::new(x, y, x + w, y + h)));
            }
            for i in 0..n_contacts {
                let x = i * 2 * d + (next() % (2 * d as u64)) as i64 - d;
                let y = (next() % (4 * d as u64)) as i64 - 2 * d;
                obj.push(subcon(pdiff, Rect::new(x, y, x + um(2), y + um(2))));
            }
            let scan = latchup_remainder_scan(&t, &obj);
            let indexed = latchup_remainder(&t, &obj);
            assert_eq!(scan.rects(), indexed.rects(), "trial {trial} diverged");
        }
    }

    /// The full 4x4 overlap matrix of Fig. 1, driven through the check:
    /// a single coverage rectangle in each of the 16 configurations cuts
    /// the active area; adding complementary contacts finishes the job.
    #[test]
    fn sixteen_overlap_cases_resolve() {
        let (t, pdiff, _) = setup();
        let d = t.latchup_distance();
        let solid = Rect::new(0, 0, 8 * d, 8 * d);
        // Contact extents along one axis producing each overlap class once
        // inflated by the latch-up distance d.
        let cases = [
            (-d, 9 * d),                // full cover
            (-2 * d, 0),                // low part only
            (8 * d, 10 * d),            // high part only
            (4 * d - 100, 4 * d + 100), // middle
        ];
        for &(x0, x1) in &cases {
            for &(y0, y1) in &cases {
                let contact = Rect::new(x0, y0, x1, y1);
                let mut obj = LayoutObject::new("x");
                obj.push(active(pdiff, solid));
                obj.push(subcon(pdiff, contact));
                let rem = latchup_remainder(&t, &obj);
                // Remainder area must equal solid minus the overlap.
                let cover = contact.inflated(d);
                let cut = solid.intersection(&cover).map_or(0, |o| o.area());
                assert_eq!(rem.area(), solid.area() - cut, "contact {contact}");
            }
        }
    }
}

//! Property test: the successive compactor never produces spacing
//! violations — the central guarantee of the paper's environment
//! (*"the relevant design-rules are regarded automatically"*).

use amgen_compact::{CompactOptions, Compactor};
use amgen_db::{LayoutObject, Shape};
use amgen_drc::{Drc, ViolationKind};
use amgen_geom::{Dir, Rect};
use amgen_tech::Tech;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct StripeSpec {
    layer: usize, // index into LAYERS
    w: i64,
    h: i64,
    net: usize, // index into NETS, NETS.len() = unset
    side: usize,
}

const LAYERS: [&str; 4] = ["poly", "metal1", "pdiff", "metal2"];
const NETS: [&str; 3] = ["a", "b", "c"];

fn arb_stripe() -> impl Strategy<Value = StripeSpec> {
    (
        0usize..LAYERS.len(),
        1i64..8,
        1i64..8,
        0usize..=NETS.len(),
        0usize..4,
    )
        .prop_map(|(layer, w, h, net, side)| StripeSpec {
            layer,
            w: w * 1_000,
            h: h * 1_000,
            net,
            side,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of rule-clean stripes compacted from any sides yields
    /// a layout without spacing violations or shorts.
    #[test]
    fn compaction_is_spacing_clean(specs in prop::collection::vec(arb_stripe(), 1..10)) {
        let tech = Tech::bicmos_1u();
        let c = Compactor::new(&tech);
        let mut main = LayoutObject::new("main");
        for spec in &specs {
            let layer = tech.layer(LAYERS[spec.layer]).unwrap();
            // Respect the layer's own minimum width so the width check
            // stays out of the picture.
            let mw = tech.min_width(layer);
            let mut obj = LayoutObject::new("stripe");
            let mut s = Shape::new(layer, Rect::new(0, 0, spec.w.max(mw), spec.h.max(mw)));
            if spec.net < NETS.len() {
                let id = obj.net(NETS[spec.net]);
                s = s.with_net(id);
            }
            obj.push(s);
            let side = Dir::ALL[spec.side];
            c.compact(&mut main, &obj, side, &CompactOptions::new()).unwrap();
        }
        let violations = Drc::new(&tech).check(&main);
        let bad: Vec<_> = violations
            .iter()
            .filter(|v| matches!(v.kind, ViolationKind::Spacing | ViolationKind::Short))
            .collect();
        prop_assert!(bad.is_empty(), "{bad:?}");
    }

    /// Compaction is deterministic: the same sequence gives the same
    /// layout.
    #[test]
    fn compaction_is_deterministic(specs in prop::collection::vec(arb_stripe(), 1..6)) {
        let tech = Tech::bicmos_1u();
        let run = || {
            let c = Compactor::new(&tech);
            let mut main = LayoutObject::new("main");
            for spec in &specs {
                let layer = tech.layer(LAYERS[spec.layer]).unwrap();
                let mut obj = LayoutObject::new("stripe");
                let mw = tech.min_width(layer);
                obj.push(Shape::new(layer, Rect::new(0, 0, spec.w.max(mw), spec.h.max(mw))));
                c.compact(&mut main, &obj, Dir::ALL[spec.side], &CompactOptions::new()).unwrap();
            }
            main
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.shapes(), b.shapes());
    }
}

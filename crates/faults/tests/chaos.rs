//! Chaos suite: deterministic fault-injection sweeps over the paper's
//! figure workloads.
//!
//! The contract under test is the pipeline-wide robustness layer:
//!
//! * no panic escapes a public generator API under `Fail` injection at
//!   any site,
//! * every injected failure surfaces as a typed [`GenError`] carrying
//!   the site's stage,
//! * the parallel optimizer survives injected worker panics — it returns
//!   a valid layout or a typed error, never a wedged thread.

use std::panic::{catch_unwind, AssertUnwindSafe};

use amgen::modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen::modgen::diffpair::{diff_pair, DiffPairParams};
use amgen::modgen::{contact_row, ContactRowParams, MosType};
use amgen::prelude::*;

fn tech() -> Tech {
    Tech::bicmos_1u()
}

/// Fig. 1 — a latch-up workload built through the primitives, then
/// rule-checked. Exercises the prim fault sites and the checker.
fn fig01_latchup(ctx: &GenCtx) -> Result<(), GenError> {
    let prim = Primitives::new(ctx);
    let pdiff = ctx.layer("pdiff").expect("pdiff exists in bicmos_1u");
    let mut obj = LayoutObject::new("latchup");
    for i in 0..8i64 {
        let mut stripe = LayoutObject::new("stripe");
        prim.inbox(&mut stripe, pdiff, Some(um(8)), Some(um(6)))?;
        for s in stripe.shapes() {
            obj.push(
                Shape::new(s.layer, s.rect.translated(Vector::new(i * um(12), 0)))
                    .with_role(ShapeRole::DeviceActive),
            );
        }
    }
    let _report = Drc::new(ctx).check(&obj);
    Ok(())
}

/// Fig. 3 — the parameterized contact row.
fn fig03_contact_row(ctx: &GenCtx) -> Result<(), GenError> {
    let poly = ctx.layer("poly").expect("poly exists in bicmos_1u");
    contact_row(ctx, poly, &ContactRowParams::new().with_w(um(10)))?;
    Ok(())
}

/// Fig. 6 — the differential pair.
fn fig06_diff_pair(ctx: &GenCtx) -> Result<(), GenError> {
    diff_pair(
        ctx,
        &DiffPairParams::new(MosType::P).with_w(um(10)).with_l(um(2)),
    )?;
    Ok(())
}

/// Fig. 10 — the common-centroid pair in the paper's configuration.
fn fig10_centroid(ctx: &GenCtx) -> Result<(), GenError> {
    centroid_diff_pair(
        ctx,
        &CentroidParams::paper(MosType::N)
            .with_w(um(6))
            .with_l(um(1)),
    )?;
    Ok(())
}

/// Fig. 2 — the contact row written in the language (interpreter path).
fn fig02_dsl(ctx: &GenCtx) -> Result<(), GenError> {
    let mut interp = Interpreter::new(ctx.clone());
    interp.run(
        r#"
row = ContactRow(layer = "poly", W = 10)

ENT ContactRow(layer, <W>, <L>)
  INBOX(layer, W, L)
  INBOX("metal1")
  ARRAY("contact")
"#,
    )?;
    Ok(())
}

type Workload = fn(&GenCtx) -> Result<(), GenError>;

const WORKLOADS: [(&str, Workload); 5] = [
    ("fig01_latchup", fig01_latchup),
    ("fig03_contact_row", fig03_contact_row),
    ("fig06_diff_pair", fig06_diff_pair),
    ("fig10_centroid", fig10_centroid),
    ("fig02_dsl", fig02_dsl),
];

/// Every (site, nth-occurrence, workload) combination: the run must
/// return — no panic — and fail (with the injected, stage-tagged error)
/// exactly when the injection fired.
#[test]
fn fail_injection_sweep_is_typed_and_panic_free() {
    let t = tech();
    for site in FaultSite::ALL {
        for n in [1, 2, 5, 25] {
            for (name, workload) in WORKLOADS {
                let (plan, hook) = FaultPlan::new(0xC0FFEE).fail_nth(site, n).build();
                let ctx = (&t).into_gen_ctx().with_faults(hook);
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| workload(&ctx))).unwrap_or_else(|_| {
                        panic!("panic escaped {name} with Fail injected at {site} (n={n})")
                    });
                let fired = plan.injected() > 0;
                match outcome {
                    Ok(()) => assert!(
                        !fired,
                        "{name}: injection at {site} (n={n}) fired but the run succeeded"
                    ),
                    Err(e) => {
                        assert!(
                            fired,
                            "{name}: failed without an injection at {site} (n={n}): {e}"
                        );
                        assert!(e.is_injected(), "{name}: untyped failure at {site}: {e}");
                        assert_eq!(
                            e.stage,
                            site.stage(),
                            "{name}: injected failure lost its stage context: {e}"
                        );
                        assert_eq!(ctx.snapshot().faults_injected, plan.injected());
                    }
                }
            }
        }
    }
}

/// Seed-rate sweep: random-looking (but replayable) failures at every
/// site simultaneously. Runs must never panic and never return anything
/// but Ok or a typed error.
#[test]
fn seeded_rate_sweep_never_panics() {
    let t = tech();
    for seed in 0..8u64 {
        let mut plan = FaultPlan::new(seed);
        for site in FaultSite::ALL {
            plan = plan.fail_rate(site, 0.02);
        }
        let (plan, hook) = plan.build();
        let ctx = (&t).into_gen_ctx().with_faults(hook);
        for (name, workload) in WORKLOADS {
            let outcome = catch_unwind(AssertUnwindSafe(|| workload(&ctx)))
                .unwrap_or_else(|_| panic!("panic escaped {name} at seed {seed}"));
            if let Err(e) = outcome {
                assert!(
                    e.is_injected(),
                    "{name} seed {seed}: failure was not the injected fault: {e}"
                );
            }
        }
        // Determinism: replaying the same seed injects identically.
        let mut replay = FaultPlan::new(seed);
        for site in FaultSite::ALL {
            replay = replay.fail_rate(site, 0.02);
        }
        let (replay, hook2) = replay.build();
        let ctx2 = (&t).into_gen_ctx().with_faults(hook2);
        for (_, workload) in WORKLOADS {
            let _ = catch_unwind(AssertUnwindSafe(|| workload(&ctx2)));
        }
        assert_eq!(
            replay.injected(),
            plan.injected(),
            "seed {seed} must replay identically"
        );
    }
}

/// The optimizer under injected worker panics: for every seed the search
/// must hand back a full valid order (panicked branches pruned) or a
/// typed error — and return at all (no wedged Condvar wait).
#[test]
fn optimizer_survives_injected_worker_panics() {
    let t = tech();
    let poly = t.layer("poly").unwrap();
    let steps: Vec<Step> = (0..5i64)
        .map(|i| {
            let mut o = LayoutObject::new("s");
            o.push(Shape::new(poly, Rect::new(0, 0, um(2 + i % 3), um(2))));
            Step::new(o, Dir::ALL[(i as usize) % 4], CompactOptions::new())
        })
        .collect();
    for seed in 0..6u64 {
        let (plan, hook) = FaultPlan::new(seed)
            .panic_rate(FaultSite::OptWorker, 0.4)
            .build();
        let ctx = (&t).into_gen_ctx().with_faults(hook);
        let opt = Optimizer::new(&ctx, RatingWeights::default());
        let r = opt.optimize_order(
            &steps,
            SearchOptions {
                keep_first: false,
                workers: 4,
                ..Default::default()
            },
        );
        match r {
            Ok(res) => {
                let mut sorted = res.order.clone();
                sorted.sort_unstable();
                assert_eq!(
                    sorted,
                    (0..steps.len()).collect::<Vec<_>>(),
                    "seed {seed}: result must be a valid permutation"
                );
                assert_eq!(
                    res.metrics.opt_panics,
                    plan.injected(),
                    "seed {seed}: every injected panic must be recorded"
                );
            }
            Err(e) => {
                let g: GenError = e.into();
                assert!(
                    g.is_injected() || matches!(g.kind, GenErrorKind::WorkerPanic(_)),
                    "seed {seed}: optimizer failure must be typed: {g}"
                );
            }
        }
    }
}

/// Injection and the generation cache compose: a context with a fault
/// hook installed bypasses the cache entirely — even a pre-warmed one —
/// so every injection site is still probed and every planned fault
/// still fires. A cached result must never mask a chaos run.
#[test]
fn chaos_runs_are_never_served_from_the_cache() {
    let t = tech();
    let cache = std::sync::Arc::new(GenCache::new());

    // Pre-warm the shared cache with clean runs of every workload.
    let warm = (&t)
        .into_gen_ctx()
        .with_cache(std::sync::Arc::clone(&cache));
    for (name, workload) in WORKLOADS {
        workload(&warm).unwrap_or_else(|e| panic!("clean warm-up of {name} failed: {e}"));
    }
    assert!(
        warm.snapshot().cache_misses > 0,
        "warm-up must populate the cache"
    );

    for site in FaultSite::ALL {
        for (name, workload) in WORKLOADS {
            let (plan, hook) = FaultPlan::new(0xC0FFEE).fail_nth(site, 1).build();
            let ctx = (&t)
                .into_gen_ctx()
                .with_cache(std::sync::Arc::clone(&cache))
                .with_faults(hook);
            let outcome = catch_unwind(AssertUnwindSafe(|| workload(&ctx)))
                .unwrap_or_else(|_| panic!("panic escaped {name} with cache + fault at {site}"));
            let snap = ctx.snapshot();
            assert_eq!(
                (snap.cache_hits, snap.cache_misses),
                (0, 0),
                "{name}: a fault-hooked context touched the cache at {site}"
            );
            match outcome {
                Ok(()) => assert_eq!(plan.injected(), 0),
                Err(e) => {
                    assert!(
                        plan.injected() > 0,
                        "{name}: uninjected failure at {site}: {e}"
                    );
                    assert!(e.is_injected(), "{name}: untyped failure at {site}: {e}");
                }
            }
        }
    }
}

/// Budgets and injection compose: a cancelled context beats the fault
/// hook to the checkpoint, and the error stays typed.
#[test]
fn cancellation_wins_over_injection() {
    let t = tech();
    let (_, hook) = FaultPlan::new(1).fail_nth(FaultSite::PrimCall, 1).build();
    let ctx = (&t).into_gen_ctx().with_faults(hook);
    ctx.cancel_token().cancel();
    let err = fig03_contact_row(&ctx).unwrap_err();
    assert!(err.is_cancelled(), "{err}");
}

//! Deterministic, seed-driven fault injection for the generator pipeline.
//!
//! The pipeline crates poll `GenCtx::fault_check` at their existing
//! instrumentation points — primitive calls, rule lookups, compaction
//! steps, module-generator entries, wiring routines, optimizer workers
//! and interpreter statements ([`FaultSite`]). When no hook is installed
//! that poll is a single branch; the [`FaultPlan`] here is the reference
//! hook the chaos suite installs to answer the question the paper's
//! interactive environment raised implicitly: *what happens to a
//! generator when any step of it can fail?*
//!
//! # Determinism
//!
//! A plan's decisions depend only on its construction (seed, rules) and
//! the per-site occurrence count. Running the same single-threaded
//! pipeline twice with equal plans therefore injects at the identical
//! step — failures found by a seed sweep are replayable by seed. (Under
//! the parallel optimizer the occurrence *order* across worker threads
//! is scheduling-dependent; determinism there is per-occurrence-index,
//! not per-wall-clock.)
//!
//! ```
//! use amgen_core::{FaultHook, FaultSite, FaultAction};
//! use amgen_faults::FaultPlan;
//!
//! // Fail the third compaction step; decisions replay exactly.
//! let plan = FaultPlan::new(7).fail_nth(FaultSite::CompactStep, 3);
//! let fire = |p: &FaultPlan| {
//!     (1..=4)
//!         .map(|_| p.decide(FaultSite::CompactStep, "obj"))
//!         .collect::<Vec<_>>()
//! };
//! assert_eq!(
//!     fire(&plan),
//!     [FaultAction::Proceed, FaultAction::Proceed, FaultAction::Fail, FaultAction::Proceed]
//! );
//! assert_eq!(plan.injected(), 1);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use amgen_core::{FaultAction, FaultHook, FaultSite};

pub mod hostile;

/// SplitMix64 — the standard 64-bit avalanche mixer. Small, fast, and
/// plenty for turning (seed, site, occurrence) into an unbiased coin.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Position of a site in [`FaultSite::ALL`] (the counter index).
fn site_index(site: FaultSite) -> usize {
    FaultSite::ALL
        .iter()
        .position(|s| *s == site)
        .expect("FaultSite::ALL covers every site")
}

/// When a rule fires, relative to the site's occurrence counter.
#[derive(Debug, Clone, Copy)]
enum Trigger {
    /// Exactly the `n`-th occurrence (1-based).
    Nth(u64),
    /// Every occurrence independently, with this probability, decided by
    /// the seeded hash of (site, occurrence).
    Rate(f64),
}

#[derive(Debug, Clone, Copy)]
struct Rule {
    site: FaultSite,
    trigger: Trigger,
    action: FaultAction,
}

/// A deterministic injection plan: which [`FaultSite`]s fire, when, and
/// whether they fail (typed error) or panic (exercising `catch_unwind`
/// isolation). Install on a context with `GenCtx::with_faults`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
    occurrences: [AtomicU64; FaultSite::ALL.len()],
    injected: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Fail the `n`-th occurrence (1-based) of `site` with a typed error.
    #[must_use]
    pub fn fail_nth(mut self, site: FaultSite, n: u64) -> FaultPlan {
        self.rules.push(Rule {
            site,
            trigger: Trigger::Nth(n),
            action: FaultAction::Fail,
        });
        self
    }

    /// Panic at the `n`-th occurrence (1-based) of `site`.
    #[must_use]
    pub fn panic_nth(mut self, site: FaultSite, n: u64) -> FaultPlan {
        self.rules.push(Rule {
            site,
            trigger: Trigger::Nth(n),
            action: FaultAction::Panic,
        });
        self
    }

    /// Panic at each listed occurrence (1-based) of `site` — the bulk
    /// form of [`panic_nth`](FaultPlan::panic_nth) for chaos schedules
    /// ("kill the 3rd, 7th and 11th dequeue") written as one literal.
    #[must_use]
    pub fn panic_at(mut self, site: FaultSite, occurrences: &[u64]) -> FaultPlan {
        for &n in occurrences {
            self = self.panic_nth(site, n);
        }
        self
    }

    /// Fail each occurrence of `site` independently with probability
    /// `rate` (clamped to `0.0..=1.0`), seed-deterministically.
    #[must_use]
    pub fn fail_rate(mut self, site: FaultSite, rate: f64) -> FaultPlan {
        self.rules.push(Rule {
            site,
            trigger: Trigger::Rate(rate.clamp(0.0, 1.0)),
            action: FaultAction::Fail,
        });
        self
    }

    /// Panic at each occurrence of `site` independently with probability
    /// `rate` (clamped to `0.0..=1.0`), seed-deterministically.
    #[must_use]
    pub fn panic_rate(mut self, site: FaultSite, rate: f64) -> FaultPlan {
        self.rules.push(Rule {
            site,
            trigger: Trigger::Rate(rate.clamp(0.0, 1.0)),
            action: FaultAction::Panic,
        });
        self
    }

    /// Wraps the plan for `GenCtx::with_faults`, keeping a handle for
    /// reading the counters after the run.
    pub fn build(self) -> (Arc<FaultPlan>, Arc<dyn FaultHook>) {
        let plan = Arc::new(self);
        let hook: Arc<dyn FaultHook> = plan.clone();
        (plan, hook)
    }

    /// Total occurrences observed at `site` so far.
    pub fn occurrences(&self, site: FaultSite) -> u64 {
        self.occurrences[site_index(site)].load(Ordering::Relaxed)
    }

    /// Total faults (fail or panic) this plan has injected.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The seeded coin for one (site, occurrence) pair.
    fn fires(&self, site: FaultSite, occurrence: u64, rate: f64) -> bool {
        let h = splitmix64(
            self.seed
                ^ (site_index(site) as u64).wrapping_mul(0xa076_1d64_78bd_642f)
                ^ occurrence.wrapping_mul(0xe703_7ed1_a0b4_28db),
        );
        // Map to [0, 1): 53 mantissa bits, the standard conversion.
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }
}

impl FaultHook for FaultPlan {
    fn decide(&self, site: FaultSite, _detail: &str) -> FaultAction {
        let occ = self.occurrences[site_index(site)].fetch_add(1, Ordering::Relaxed) + 1;
        for rule in &self.rules {
            if rule.site != site {
                continue;
            }
            let fires = match rule.trigger {
                Trigger::Nth(n) => occ == n,
                Trigger::Rate(r) => self.fires(site, occ, r),
            };
            if fires {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return rule.action;
            }
        }
        FaultAction::Proceed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_proceeds() {
        let p = FaultPlan::new(1);
        for site in FaultSite::ALL {
            for _ in 0..10 {
                assert_eq!(p.decide(site, "x"), FaultAction::Proceed);
            }
        }
        assert_eq!(p.injected(), 0);
        assert_eq!(p.occurrences(FaultSite::PrimCall), 10);
    }

    #[test]
    fn nth_targeting_fires_exactly_once() {
        let p = FaultPlan::new(1).fail_nth(FaultSite::PrimCall, 3);
        let decisions: Vec<FaultAction> =
            (0..5).map(|_| p.decide(FaultSite::PrimCall, "x")).collect();
        assert_eq!(
            decisions,
            [
                FaultAction::Proceed,
                FaultAction::Proceed,
                FaultAction::Fail,
                FaultAction::Proceed,
                FaultAction::Proceed,
            ]
        );
        assert_eq!(p.injected(), 1);
        // Other sites are untouched.
        assert_eq!(p.decide(FaultSite::CompactStep, "x"), FaultAction::Proceed);
    }

    #[test]
    fn rate_decisions_replay_by_seed() {
        let run = |seed: u64| -> Vec<FaultAction> {
            let p = FaultPlan::new(seed).fail_rate(FaultSite::DslStmt, 0.5);
            (0..64).map(|_| p.decide(FaultSite::DslStmt, "s")).collect()
        };
        assert_eq!(run(42), run(42), "same seed, same decisions");
        assert_ne!(run(42), run(43), "different seed, different decisions");
        let fails = run(42).iter().filter(|a| **a == FaultAction::Fail).count();
        assert!(
            (10..=54).contains(&fails),
            "a 0.5 rate over 64 draws should fire roughly half the time, got {fails}"
        );
    }

    #[test]
    fn rate_bounds_are_exact() {
        let never = FaultPlan::new(9).fail_rate(FaultSite::RouteCall, 0.0);
        let always = FaultPlan::new(9).panic_rate(FaultSite::RouteCall, 1.0);
        for _ in 0..32 {
            assert_eq!(
                never.decide(FaultSite::RouteCall, "r"),
                FaultAction::Proceed
            );
            assert_eq!(always.decide(FaultSite::RouteCall, "r"), FaultAction::Panic);
        }
    }

    #[test]
    fn build_shares_the_counters() {
        let (plan, hook) = FaultPlan::new(5)
            .fail_nth(FaultSite::ModgenEntry, 1)
            .build();
        assert_eq!(hook.decide(FaultSite::ModgenEntry, "m"), FaultAction::Fail);
        assert_eq!(plan.injected(), 1);
        assert_eq!(plan.occurrences(FaultSite::ModgenEntry), 1);
    }
}

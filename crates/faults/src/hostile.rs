//! Hostile generator programs: the adversarial corpus shared by the
//! chaos suite and the serving load harness.
//!
//! Every program here is syntactically valid and semantically hostile —
//! it tries to make a generation run consume unbounded (or just
//! disproportionate) resources. Each entry documents the refusal a
//! well-configured front-end must produce: either the static cost
//! certificate proves the demand exceeds the budget and the run is
//! refused at *admission* (zero fuel spent — `amgen-lint::checked_run`),
//! or the analyzer flags the program outright (unbounded recursion is a
//! lint **error**), or the dynamic meter stops it mid-flight.
//!
//! ```
//! use amgen_faults::hostile;
//!
//! for h in hostile::ALL {
//!     assert!(!h.source.is_empty());
//! }
//! assert!(hostile::ALL.iter().any(|h| h.refusal == hostile::Refusal::Admission));
//! ```

/// How a correctly defended front-end disposes of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// The linter reports an error (e.g. statically unbounded
    /// recursion, E501) — refused before certification even matters.
    Lint,
    /// The cost certificate proves the run cannot fit a serving-scale
    /// fuel budget — refused at admission with zero fuel spent.
    Admission,
    /// No closed static bound exists (or the bound fits); the dynamic
    /// budget meter must stop the run instead.
    Dynamic,
}

/// One adversarial program with its expected disposition.
#[derive(Debug, Clone, Copy)]
pub struct Hostile {
    /// Short identifier, stable for reports and bench labels.
    pub name: &'static str,
    /// The program source.
    pub source: &'static str,
    /// The refusal a defended front-end must produce under a budget far
    /// smaller than the program's demand.
    pub refusal: Refusal,
}

/// A flat constant-bound fuel bomb: one loop whose certified fuel is a
/// five-digit constant. Any serving budget below that refuses it at
/// admission without executing a statement.
pub const FUEL_BOMB: Hostile = Hostile {
    name: "fuel_bomb",
    source: "FOR i = 1 TO 100000\n  x = i\nEND\n",
    refusal: Refusal::Admission,
};

/// A nested bomb: quadratic blow-up from two honest-looking loops. The
/// certificate multiplies the trip counts, so admission still sees the
/// full 10^6-statement demand.
pub const NESTED_BOMB: Hostile = Hostile {
    name: "nested_bomb",
    source: "FOR i = 1 TO 1000\n  FOR j = 1 TO 1000\n    x = i + j\n  END\nEND\n",
    refusal: Refusal::Admission,
};

/// A shape bomb: the loop body calls a real generator, so admitting it
/// would also burn compaction steps and geometry, not just fuel.
/// (Needs the standard library's `ContactRow` loaded.)
pub const SHAPE_BOMB: Hostile = Hostile {
    name: "shape_bomb",
    source: "FOR i = 1 TO 60000\n  x = ContactRow(layer = \"poly\", W = 8)\nEND\n",
    refusal: Refusal::Admission,
};

/// Unbounded direct recursion with no decreasing measure: the analyzer
/// proves non-termination structurally (E501) and the linter rejects
/// the program as an error — it never reaches admission.
pub const RECURSION_BOMB: Hostile = Hostile {
    name: "recursion_bomb",
    source: "ENT Bomb(<n>)\n  x = Bomb(n = n + 1)\n\ny = Bomb(n = 1)\n",
    refusal: Refusal::Lint,
};

/// All hostile programs, in refusal-hardness order (lint-rejected
/// first, then admission-refused).
pub const ALL: [Hostile; 4] = [RECURSION_BOMB, FUEL_BOMB, NESTED_BOMB, SHAPE_BOMB];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_well_formed() {
        for h in ALL {
            assert!(!h.name.is_empty());
            assert!(
                h.source.ends_with('\n'),
                "{}: missing trailing newline",
                h.name
            );
        }
        // Names are unique (they become bench labels and report keys).
        let mut names: Vec<_> = ALL.iter().map(|h| h.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
    }
}

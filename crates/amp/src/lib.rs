//! The broad-band BiCMOS amplifier example (§3 of the paper).
//!
//! The paper demonstrates its environment on the high-bandwidth BiCMOS
//! operational amplifier of Nebel/Kleine (ref. \[10\] of the paper),
//! partitioned into six blocks with per-block matching styles:
//!
//! | block | content | style (paper's words) |
//! |---|---|---|
//! | A | cascode transistors of the bias circuit | *"two inter-digital MOS transistors"* |
//! | B | current mirror | *"symmetrical layout module ... with the diode transistor in the middle"* |
//! | C | current sources | *"cross-coupled arrangement of inter-digital transistors"* |
//! | D | no special matching | plain transistor pair |
//! | E | input differential pair | *"centroidal cross-coupled inter-digital transistors with eight dummy transistors in the middle and four ... on the right and left side"* |
//! | F | bipolar transistors | *"composed symmetrically"* |
//!
//! *"The placement of the modules and the global routing were done
//! manually"* — reproduced here as a fixed placement table plus a
//! deterministic channel router (metal2 tracks, metal1 stubs through
//! vias).
//!
//! The paper reports a layout of **592 × 481 µm²** in a 1 µm Siemens
//! BiCMOS process. Device sizes of ref. \[10\] are not printed in the
//! paper, so this module uses representative sizes; EXPERIMENTS.md
//! records the measured area next to the paper's.

pub mod blocks;
pub mod routing;

pub use blocks::{build_amplifier, build_amplifier_cmos, AmpReport};

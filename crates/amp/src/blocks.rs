//! Block generation, placement and assembly of the amplifier.

use amgen_core::{GenCtx, IntoGenCtx};
use amgen_db::LayoutObject;
use amgen_drc::{latchup, Drc, ViolationKind};
use amgen_extract::Extractor;
use amgen_geom::{um, Coord, Point, Rect, Vector};
use amgen_modgen::bipolar::{bipolar_pair, NpnParams};
use amgen_modgen::cascode::{cascode_pair, CascodeParams};
use amgen_modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen_modgen::guard::{guard_ring, GuardRingParams};
use amgen_modgen::interdigit::{interdigitated, InterdigitParams};
use amgen_modgen::mirror::{current_mirror, MirrorParams};
use amgen_modgen::{ModgenError, MosType};

use crate::routing::{bus_end, enter_column, h_m2, tap, v_m1, via};

/// Measurements of the finished amplifier.
#[derive(Debug, Clone)]
pub struct AmpReport {
    /// Total bounding box (µm).
    pub width_um: f64,
    /// Total bounding box (µm).
    pub height_um: f64,
    /// Per-block name and size in µm.
    pub blocks: Vec<(String, f64, f64)>,
    /// Short violations after assembly (must be 0).
    pub shorts: usize,
    /// Spacing violations after assembly.
    pub spacing: usize,
    /// Latch-up rule fulfilled.
    pub latchup_clean: bool,
    /// Parasitic capacitance of the two output nets, in fF.
    pub output_cap_ff: f64,
}

/// Builds one amplifier block: optional guard ring, prefix isolation of
/// internal nets, terminal renaming to global net names.
fn prep(
    tech: &GenCtx,
    block: LayoutObject,
    prefix: &str,
    guard: bool,
    renames: &[(&str, &str)],
) -> Result<LayoutObject, ModgenError> {
    let mut b = if guard {
        guard_ring(tech, &block, &GuardRingParams::default())?
    } else {
        block
    };
    b = b.prefixed(prefix);
    for (old, new) in renames {
        b.rename_net(&format!("{prefix}{old}"), new);
    }
    Ok(b)
}

/// Generates the full amplifier: six blocks in one row separated by 15 µm
/// streets, supply rails below, a signal channel above, and the global
/// routes of the signal path (all vertical wiring on metal1 in the
/// streets, all horizontal wiring on metal2 — see [`crate::routing`]).
pub fn build_amplifier(tech: impl IntoGenCtx) -> Result<(LayoutObject, AmpReport), ModgenError> {
    let tech = &tech.into_gen_ctx();
    // ---- module generation (per-block matching styles of §3) ----------
    let block_a = cascode_pair(
        tech,
        &CascodeParams::new(MosType::N).with_w(um(8)).with_fingers(2),
    )?;
    let block_b = current_mirror(
        tech,
        &MirrorParams::new(MosType::P)
            .with_w(um(8))
            .with_side_fingers(1),
    )?;
    let block_c = {
        let mut p = CentroidParams::paper(MosType::N)
            .with_w(um(8))
            .without_guard();
        p.center_dummies = 0;
        p.side_dummies = 0;
        centroid_diff_pair(tech, &p)?
    };
    let block_d = interdigitated(tech, &InterdigitParams::new(MosType::P, 2).with_w(um(8)))?;
    let block_e = centroid_diff_pair(
        tech,
        &CentroidParams::paper(MosType::N)
            .with_w(um(8))
            .with_l(um(1)),
    )?;
    let block_f = bipolar_pair(tech, &NpnParams::new().with_emitter_l(um(12)))?;

    // ---- terminal renaming to global nets ------------------------------
    let a = prep(
        tech,
        block_a,
        "a:",
        true,
        &[("s", "gnd"), ("d", "bias"), ("sub", "gnd")],
    )?;
    let b = prep(
        tech,
        block_b,
        "b:",
        true,
        &[("s", "vdd"), ("out", "bias"), ("sub", "gnd")],
    )?;
    // Block C is flipped so its d2 bus becomes the bottom-most metal2 and
    // can reach the tail rail without crossing its sibling buses.
    let c = {
        let mut p = prep(
            tech,
            block_c,
            "c:",
            true,
            &[("s", "gnd"), ("d2", "tail"), ("sub", "gnd")],
        )?;
        let axis = p.bbox().center().y;
        p = p.mirrored_y(axis);
        p
    };
    let d = prep(
        tech,
        block_d,
        "d:",
        true,
        &[("s", "vdd"), ("d", "outstage"), ("sub", "gnd")],
    )?;
    // The paper's block E includes its own guard ring already.
    let e = prep(
        tech,
        block_e,
        "e:",
        false,
        &[
            ("s", "tail"),
            ("d1", "outl"),
            ("d2", "outr"),
            ("sub", "gnd"),
        ],
    )?;
    let f = prep(
        tech,
        block_f,
        "f:",
        false,
        &[
            ("b", "outl"),
            ("b_2", "outr"),
            ("c", "vdd"),
            ("c_2", "vdd"),
            ("e_2", "outstage"),
        ],
    )?;

    // ---- manual placement: one row, 15 µm streets ----------------------
    let street = um(15);
    let mut amp = LayoutObject::new("bicmos_amplifier");
    let mut cursor = 0i64;
    let mut blocks_report = Vec::new();
    // street_x[i] = centre of the street west of block i; one extra east.
    let mut street_x: Vec<Coord> = Vec::new();
    let mut ring_stub_xs: Vec<Coord> = Vec::new();
    for (idx, blk) in [&a, &b, &c, &d, &e, &f].into_iter().enumerate() {
        street_x.push(cursor - street / 2);
        let bb = blk.bbox();
        amp.absorb(blk, Vector::new(cursor - bb.x0, -bb.y0));
        blocks_report.push((
            blk.name().to_string(),
            bb.width() as f64 / 1e3,
            bb.height() as f64 / 1e3,
        ));
        if idx != 5 {
            // Guarded blocks get a substrate stub at their centre.
            ring_stub_xs.push(cursor + bb.width() / 2);
        }
        cursor += bb.width() + street;
    }
    street_x.push(cursor - street / 2); // street 6, east of block F
    let sx = |i: usize| street_x[i];

    // ---- rails, tracks, spine -------------------------------------------
    let top = amp.bbox().y1;
    let y_gnd = -um(10);
    let y_vdd = -um(20);
    let y_tail = -um(30);
    let y_bias = top + um(10);
    let y_outstage = top + um(16);
    let y_gnd_top = top + um(24);
    let spine_x = amp.bbox().x1 + um(18);
    let (x_lo, x_hi) = (sx(0) - um(8), spine_x + um(8));
    h_m2(tech, &mut amp, "gnd", y_gnd, x_lo, x_hi);
    h_m2(tech, &mut amp, "vdd", y_vdd, x_lo, x_hi);
    h_m2(tech, &mut amp, "tail", y_tail, x_lo, x_hi);
    h_m2(tech, &mut amp, "gnd", y_gnd_top, x_lo, x_hi);
    // gnd spine joining the two gnd rails, east of everything.
    v_m1(tech, &mut amp, "gnd", spine_x, y_gnd, y_gnd_top);
    via(tech, &mut amp, "gnd", Point::new(spine_x, y_gnd)).map_err(ModgenError::Route)?;
    via(tech, &mut amp, "gnd", Point::new(spine_x, y_gnd_top)).map_err(ModgenError::Route)?;

    // Substrate ring stubs straight down to the gnd rail.
    for x in ring_stub_xs {
        v_m1(tech, &mut amp, "gnd", x, y_gnd, 1_000);
        via(tech, &mut amp, "gnd", Point::new(x, y_gnd)).map_err(ModgenError::Route)?;
    }

    let port_rect = |amp: &LayoutObject, name: &str| -> Result<Rect, ModgenError> {
        amp.last_port(name)
            .map(|p| p.rect)
            .ok_or_else(|| ModgenError::Route(format!("port `{name}` missing")))
    };

    // ---- supply and tail connections ------------------------------------
    // gnd: A's source bus (west), C's source bus (east, to the top rail).
    let r = port_rect(&amp, "a:s")?;
    let p = tap(tech, &mut amp, "gnd", r, false, sx(0)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "gnd", p.x, p.y, y_gnd);
    via(tech, &mut amp, "gnd", Point::new(p.x, y_gnd)).map_err(ModgenError::Route)?;
    let r = port_rect(&amp, "c:s")?;
    let p = tap(tech, &mut amp, "gnd", r, true, sx(3) + um(4)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "gnd", p.x, p.y, y_gnd_top);
    via(tech, &mut amp, "gnd", Point::new(p.x, y_gnd_top)).map_err(ModgenError::Route)?;
    // vdd: B's and D's source buses down, F's collector columns down.
    for (port, x) in [("b:s", sx(2) - um(4)), ("d:s", sx(4) - um(4))] {
        let r = port_rect(&amp, port)?;
        let p = tap(tech, &mut amp, "vdd", r, true, x).map_err(ModgenError::Route)?;
        v_m1(tech, &mut amp, "vdd", p.x, p.y, y_vdd);
        via(tech, &mut amp, "vdd", Point::new(p.x, y_vdd)).map_err(ModgenError::Route)?;
    }
    for port in ["f:c", "f:c_2"] {
        let r = port_rect(&amp, port)?;
        let x = r.center().x;
        v_m1(tech, &mut amp, "vdd", x, r.y0 + 1_000, y_vdd);
        via(tech, &mut amp, "vdd", Point::new(x, y_vdd)).map_err(ModgenError::Route)?;
    }
    // tail: C's d2 (bottom bus after the flip) and E's source bus.
    let r = port_rect(&amp, "c:d2")?;
    let p = tap(tech, &mut amp, "tail", r, true, sx(3) - um(4)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "tail", p.x, p.y, y_tail);
    via(tech, &mut amp, "tail", Point::new(p.x, y_tail)).map_err(ModgenError::Route)?;
    let r = port_rect(&amp, "e:s")?;
    let p = tap(tech, &mut amp, "tail", r, false, sx(4)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "tail", p.x, p.y, y_tail);
    via(tech, &mut amp, "tail", Point::new(p.x, y_tail)).map_err(ModgenError::Route)?;

    // ---- signal routes ---------------------------------------------------
    // outl / outr: E's drain buses into F's base columns.
    let b_col = port_rect(&amp, "f:b")?;
    let b2_col = port_rect(&amp, "f:b_2")?;
    let entry_l = b_col.center().y - um(4);
    let entry_r = b2_col.center().y + um(4);
    let r = port_rect(&amp, "e:d1")?;
    let p = tap(tech, &mut amp, "outl", r, true, sx(5) - um(4)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "outl", p.x, p.y, entry_l);
    enter_column(tech, &mut amp, "outl", b_col, entry_l, p.x).map_err(ModgenError::Route)?;
    let r = port_rect(&amp, "e:d2")?;
    let p = tap(tech, &mut amp, "outr", r, true, sx(5)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "outr", p.x, p.y, entry_r);
    enter_column(tech, &mut amp, "outr", b2_col, entry_r, p.x).map_err(ModgenError::Route)?;
    // bias: B's output bus to A's drain bus via a channel track.
    let r = port_rect(&amp, "b:out")?;
    let p = tap(tech, &mut amp, "bias", r, true, sx(2)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "bias", p.x, p.y, y_bias);
    via(tech, &mut amp, "bias", Point::new(p.x, y_bias)).map_err(ModgenError::Route)?;
    h_m2(tech, &mut amp, "bias", y_bias, sx(1), sx(2));
    via(tech, &mut amp, "bias", Point::new(sx(1), y_bias)).map_err(ModgenError::Route)?;
    let ad = port_rect(&amp, "a:d")?;
    let ad_end = bus_end(ad, true);
    v_m1(tech, &mut amp, "bias", sx(1), y_bias, ad_end.y);
    via(tech, &mut amp, "bias", Point::new(sx(1), ad_end.y)).map_err(ModgenError::Route)?;
    h_m2(tech, &mut amp, "bias", ad_end.y, ad_end.x, sx(1));
    // outstage: D's drain bus over the top to F's right emitter column.
    let e2_col = port_rect(&amp, "f:e_2")?;
    let entry_e2 = e2_col.center().y;
    let r = port_rect(&amp, "d:d")?;
    let p = tap(tech, &mut amp, "outstage", r, true, sx(4) + um(4)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "outstage", p.x, p.y, y_outstage);
    via(tech, &mut amp, "outstage", Point::new(p.x, y_outstage)).map_err(ModgenError::Route)?;
    h_m2(tech, &mut amp, "outstage", y_outstage, sx(4) + um(4), sx(6));
    via(tech, &mut amp, "outstage", Point::new(sx(6), y_outstage)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "outstage", sx(6), y_outstage, entry_e2);
    enter_column(tech, &mut amp, "outstage", e2_col, entry_e2, sx(6))
        .map_err(ModgenError::Route)?;

    // ---- measurement ----------------------------------------------------
    let bbox = amp.bbox();
    let drc = Drc::new(tech);
    let spacing_violations = drc.check_spacing(&amp);
    let shorts = spacing_violations
        .iter()
        .filter(|v| v.kind == ViolationKind::Short)
        .count();
    let spacing = spacing_violations.len() - shorts;
    let latchup_clean = latchup::check_latchup(tech, &amp).is_empty();
    let ex = Extractor::new(tech);
    let output_cap_ff = ex
        .parasitics(&amp)
        .iter()
        .filter(|n| matches!(n.name.as_deref(), Some("outl") | Some("outr")))
        .map(|n| n.cap_af)
        .sum::<f64>()
        / 1_000.0;
    let report = AmpReport {
        width_um: bbox.width() as f64 / 1e3,
        height_um: bbox.height() as f64 / 1e3,
        blocks: blocks_report,
        shorts,
        spacing,
        latchup_clean,
        output_cap_ff,
    };
    Ok((amp, report))
}

/// A plain-CMOS variant of the amplifier for the `cmos_08` deck: the
/// bipolar output pair of block F is replaced by an inter-digitated PMOS
/// stage (block G); everything else is generated from the same module
/// library — the system-level demonstration that the whole flow, not
/// just single modules, is technology independent.
pub fn build_amplifier_cmos(
    tech: impl IntoGenCtx,
) -> Result<(LayoutObject, AmpReport), ModgenError> {
    let tech = &tech.into_gen_ctx();
    let block_a = cascode_pair(
        tech,
        &CascodeParams::new(MosType::N).with_w(um(8)).with_fingers(2),
    )?;
    let block_b = current_mirror(
        tech,
        &MirrorParams::new(MosType::P)
            .with_w(um(8))
            .with_side_fingers(1),
    )?;
    let block_c = {
        let mut p = CentroidParams::paper(MosType::N)
            .with_w(um(8))
            .without_guard();
        p.center_dummies = 0;
        p.side_dummies = 0;
        centroid_diff_pair(tech, &p)?
    };
    let block_d = interdigitated(tech, &InterdigitParams::new(MosType::P, 2).with_w(um(8)))?;
    let block_e = centroid_diff_pair(
        tech,
        &CentroidParams::paper(MosType::N)
            .with_w(um(8))
            .with_l(um(1)),
    )?;
    let block_g = interdigitated(tech, &InterdigitParams::new(MosType::P, 2).with_w(um(10)))?;

    let a = prep(
        tech,
        block_a,
        "a:",
        true,
        &[("s", "gnd"), ("d", "bias"), ("sub", "gnd")],
    )?;
    let b = prep(
        tech,
        block_b,
        "b:",
        true,
        &[("s", "vdd"), ("out", "bias"), ("sub", "gnd")],
    )?;
    let c = {
        let mut p = prep(
            tech,
            block_c,
            "c:",
            true,
            &[("s", "gnd"), ("d2", "tail"), ("sub", "gnd")],
        )?;
        let axis = p.bbox().center().y;
        p = p.mirrored_y(axis);
        p
    };
    let d = prep(
        tech,
        block_d,
        "d:",
        true,
        &[("s", "vdd"), ("d", "outstage"), ("sub", "gnd")],
    )?;
    let e = prep(
        tech,
        block_e,
        "e:",
        false,
        &[
            ("s", "tail"),
            ("d1", "outl"),
            ("d2", "outr"),
            ("sub", "gnd"),
        ],
    )?;
    let g = prep(
        tech,
        block_g,
        "g:",
        true,
        &[("s", "vdd"), ("g", "outl"), ("d", "out"), ("sub", "gnd")],
    )?;

    let street = um(15);
    let mut amp = LayoutObject::new("cmos_amplifier");
    let mut cursor = 0i64;
    let mut blocks_report = Vec::new();
    let mut street_x: Vec<Coord> = Vec::new();
    let mut ring_stub_xs: Vec<Coord> = Vec::new();
    for blk in [&a, &b, &c, &d, &e, &g] {
        street_x.push(cursor - street / 2);
        let bb = blk.bbox();
        amp.absorb(blk, Vector::new(cursor - bb.x0, -bb.y0));
        blocks_report.push((
            blk.name().to_string(),
            bb.width() as f64 / 1e3,
            bb.height() as f64 / 1e3,
        ));
        ring_stub_xs.push(cursor + bb.width() / 2);
        cursor += bb.width() + street;
    }
    street_x.push(cursor - street / 2);
    let sx = |i: usize| street_x[i];

    let y_gnd = -um(10);
    let y_vdd = -um(20);
    let y_tail = -um(30);
    let top = amp.bbox().y1;
    let y_gnd_top = top + um(12);
    let spine_x = amp.bbox().x1 + um(18);
    let (x_lo, x_hi) = (sx(0) - um(8), spine_x + um(8));
    h_m2(tech, &mut amp, "gnd", y_gnd, x_lo, x_hi);
    h_m2(tech, &mut amp, "vdd", y_vdd, x_lo, x_hi);
    h_m2(tech, &mut amp, "tail", y_tail, x_lo, x_hi);
    h_m2(tech, &mut amp, "gnd", y_gnd_top, x_lo, x_hi);
    v_m1(tech, &mut amp, "gnd", spine_x, y_gnd, y_gnd_top);
    via(tech, &mut amp, "gnd", Point::new(spine_x, y_gnd)).map_err(ModgenError::Route)?;
    via(tech, &mut amp, "gnd", Point::new(spine_x, y_gnd_top)).map_err(ModgenError::Route)?;
    for x in ring_stub_xs {
        v_m1(tech, &mut amp, "gnd", x, y_gnd, 1_000);
        via(tech, &mut amp, "gnd", Point::new(x, y_gnd)).map_err(ModgenError::Route)?;
    }
    let port_rect = |amp: &LayoutObject, name: &str| -> Result<Rect, ModgenError> {
        amp.last_port(name)
            .map(|p| p.rect)
            .ok_or_else(|| ModgenError::Route(format!("port `{name}` missing")))
    };
    // Supplies.
    let r = port_rect(&amp, "a:s")?;
    let p = tap(tech, &mut amp, "gnd", r, false, sx(0)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "gnd", p.x, p.y, y_gnd);
    via(tech, &mut amp, "gnd", Point::new(p.x, y_gnd)).map_err(ModgenError::Route)?;
    let r = port_rect(&amp, "c:s")?;
    let p = tap(tech, &mut amp, "gnd", r, true, sx(3) + um(4)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "gnd", p.x, p.y, y_gnd_top);
    via(tech, &mut amp, "gnd", Point::new(p.x, y_gnd_top)).map_err(ModgenError::Route)?;
    for (port, x) in [
        ("b:s", sx(2) - um(4)),
        ("d:s", sx(4) - um(4)),
        ("g:s", sx(6)),
    ] {
        let r = port_rect(&amp, port)?;
        let p = tap(tech, &mut amp, "vdd", r, true, x).map_err(ModgenError::Route)?;
        let _ = port;
        v_m1(tech, &mut amp, "vdd", p.x, p.y, y_vdd);
        via(tech, &mut amp, "vdd", Point::new(p.x, y_vdd)).map_err(ModgenError::Route)?;
    }
    // Tail.
    let r = port_rect(&amp, "c:d2")?;
    let p = tap(tech, &mut amp, "tail", r, true, sx(3) - um(4)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "tail", p.x, p.y, y_tail);
    via(tech, &mut amp, "tail", Point::new(p.x, y_tail)).map_err(ModgenError::Route)?;
    let r = port_rect(&amp, "e:s")?;
    let p = tap(tech, &mut amp, "tail", r, false, sx(4)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "tail", p.x, p.y, y_tail);
    via(tech, &mut amp, "tail", Point::new(p.x, y_tail)).map_err(ModgenError::Route)?;
    // Signal: E.d1 into G's gate contact column (left output single-ended).
    let g_gate = port_rect(&amp, "g:g")?;
    let entry_y = g_gate.center().y;
    let r = port_rect(&amp, "e:d1")?;
    let p = tap(tech, &mut amp, "outl", r, true, sx(5)).map_err(ModgenError::Route)?;
    v_m1(tech, &mut amp, "outl", p.x, p.y, entry_y);
    enter_column(tech, &mut amp, "outl", g_gate, entry_y, p.x).map_err(ModgenError::Route)?;

    let bbox = amp.bbox();
    let drc = Drc::new(tech);
    let spacing_violations = drc.check_spacing(&amp);
    let shorts = spacing_violations
        .iter()
        .filter(|v| v.kind == ViolationKind::Short)
        .count();
    let spacing = spacing_violations.len() - shorts;
    let latchup_clean = latchup::check_latchup(tech, &amp).is_empty();
    let ex = Extractor::new(tech);
    let output_cap_ff = ex
        .parasitics(&amp)
        .iter()
        .filter(|n| matches!(n.name.as_deref(), Some("outl") | Some("outr")))
        .map(|n| n.cap_af)
        .sum::<f64>()
        / 1_000.0;
    Ok((
        amp,
        AmpReport {
            width_um: bbox.width() as f64 / 1e3,
            height_um: bbox.height() as f64 / 1e3,
            blocks: blocks_report,
            shorts,
            spacing,
            latchup_clean,
            output_cap_ff,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_tech::Tech;

    fn amp() -> (Tech, LayoutObject, AmpReport) {
        let t = Tech::bicmos_1u();
        let (a, r) = build_amplifier(&t).unwrap();
        (t, a, r)
    }

    #[test]
    fn amplifier_builds() {
        let (_, amp, report) = amp();
        assert!(amp.len() > 500, "a real module count: {}", amp.len());
        assert_eq!(report.blocks.len(), 6);
        assert!(report.width_um > 100.0 && report.width_um < 2_000.0);
        assert!(report.height_um > 30.0 && report.height_um < 1_000.0);
    }

    #[test]
    fn amplifier_has_no_shorts() {
        let (t, layout, report) = amp();
        if report.shorts != 0 {
            let v = Drc::new(&t).check_spacing(&layout);
            let shorts: Vec<_> = v
                .iter()
                .filter(|x| x.kind == ViolationKind::Short)
                .collect();
            panic!(
                "{} shorts: {:#?}",
                report.shorts,
                &shorts[..shorts.len().min(5)]
            );
        }
    }

    #[test]
    fn amplifier_is_latchup_clean() {
        let (_, _, report) = amp();
        assert!(report.latchup_clean);
    }

    #[test]
    fn output_nets_exist_and_have_capacitance() {
        let (_, _, report) = amp();
        assert!(report.output_cap_ff > 0.0);
    }

    #[test]
    fn signal_path_is_connected() {
        let (t, layout, _) = amp();
        let nets = Extractor::new(&t).connectivity(&layout);
        // outl joins block E's d1 bus with block F's base: the extracted
        // component carrying "outl" must span shapes from both blocks.
        let outl = nets
            .iter()
            .find(|n| n.declared.iter().any(|d| d == "outl"))
            .expect("outl extracted");
        let xs: Vec<i64> = outl
            .shapes
            .iter()
            .map(|&i| layout.shapes()[i].rect.center().x)
            .collect();
        let spread = xs.iter().max().unwrap() - xs.iter().min().unwrap();
        assert!(spread > um(50), "outl spans blocks: {spread}");
    }

    #[test]
    fn no_cross_net_merges() {
        let (t, layout, _) = amp();
        let conflicts = Extractor::new(&t).conflicts(&layout);
        let real: Vec<Vec<String>> = conflicts
            .iter()
            .map(|c| {
                c.declared
                    .iter()
                    .filter(|d| !d.contains(':') && !d.starts_with('<'))
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .filter(|g| g.len() > 1)
            .collect();
        assert!(real.is_empty(), "{real:?}");
    }
}

#[cfg(test)]
mod cmos_tests {
    use super::*;
    use amgen_tech::Tech;

    #[test]
    fn cmos_variant_builds_clean_in_cmos_08() {
        let t = Tech::cmos_08();
        let (amp, report) = build_amplifier_cmos(&t).unwrap();
        assert!(amp.len() > 300);
        assert_eq!(report.shorts, 0, "{report:?}");
        assert!(report.latchup_clean);
        assert_eq!(report.blocks.len(), 6);
    }

    #[test]
    fn cmos_variant_signal_reaches_output_stage() {
        let t = Tech::cmos_08();
        let (amp, _) = build_amplifier_cmos(&t).unwrap();
        let nets = Extractor::new(&t).connectivity(&amp);
        let outl = nets
            .iter()
            .find(|n| n.declared.iter().any(|d| d == "outl"))
            .expect("outl extracted");
        // outl spans from block E to block G.
        let xs: Vec<i64> = outl
            .shapes
            .iter()
            .map(|&i| amp.shapes()[i].rect.center().x)
            .collect();
        assert!(xs.iter().max().unwrap() - xs.iter().min().unwrap() > um(40));
    }

    #[test]
    fn cmos_variant_also_works_in_bicmos_deck() {
        // The CMOS variant only uses MOS modules, so it generates in the
        // BiCMOS deck too.
        let t = Tech::bicmos_1u();
        let (_, report) = build_amplifier_cmos(&t).unwrap();
        assert_eq!(report.shorts, 0);
    }
}

//! Deterministic global routing primitives for the amplifier.
//!
//! The discipline that keeps the assembly short-free:
//!
//! * **horizontal** segments run on **metal2** (rails, channel tracks,
//!   taps out of bus ends, entries into device columns),
//! * **vertical** segments run on **metal1** inside the *streets* between
//!   blocks (and in the open area below/above them),
//! * every direction change is a via stack.
//!
//! Horizontal metal2 freely crosses the blocks' metal1 guard rings and
//! device columns; vertical metal1 freely crosses the metal2 rails,
//! tracks and bus stubs of other nets — all crossings are inter-layer.

use amgen_core::IntoGenCtx;
use amgen_db::{LayoutObject, Shape};
use amgen_geom::{Coord, Point, Rect};
use amgen_route::Router;

/// Pushes a horizontal metal2 segment (centred on `y`) and returns it.
pub fn h_m2(
    tech: impl IntoGenCtx,
    obj: &mut LayoutObject,
    net: &str,
    y: Coord,
    xa: Coord,
    xb: Coord,
) -> Rect {
    let tech = tech.into_gen_ctx();
    let m2 = tech.metal2().expect("metal2 exists");
    let w = tech.min_width(m2).max(2_000);
    let r = Rect::new(xa.min(xb), y - w / 2, xa.max(xb), y - w / 2 + w);
    let id = obj.net(net);
    obj.push(Shape::new(m2, r).with_net(id));
    r
}

/// Pushes a vertical metal1 segment (centred on `x`) and returns it.
pub fn v_m1(
    tech: impl IntoGenCtx,
    obj: &mut LayoutObject,
    net: &str,
    x: Coord,
    ya: Coord,
    yb: Coord,
) -> Rect {
    let tech = tech.into_gen_ctx();
    let m1 = tech.metal1().expect("metal1 exists");
    let w = tech.min_width(m1).max(2_000);
    let r = Rect::new(x - w / 2, ya.min(yb), x - w / 2 + w, ya.max(yb));
    let id = obj.net(net);
    obj.push(Shape::new(m1, r).with_net(id));
    r
}

/// Places a metal1↔metal2 via stack at `p`.
pub fn via(
    tech: impl IntoGenCtx,
    obj: &mut LayoutObject,
    net: &str,
    p: Point,
) -> Result<(), String> {
    let tech = tech.into_gen_ctx();
    let router = Router::new(&tech);
    let m1 = tech.metal1().map_err(|e| e.to_string())?;
    let m2 = tech.metal2().map_err(|e| e.to_string())?;
    let v = tech.via1().map_err(|e| e.to_string())?;
    let id = obj.net(net);
    router
        .via_stack(obj, v, m1, m2, p, Some(id))
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// The midpoint of a port rectangle's east or west edge — where a
/// horizontal tap leaves the bus.
pub fn bus_end(rect: Rect, east: bool) -> Point {
    Point::new(if east { rect.x1 } else { rect.x0 }, rect.center().y)
}

/// Taps a metal2 bus: a horizontal metal2 segment from the bus's
/// east/west end to `street_x`, with a via stack there. Returns the via
/// point (on both metal1 and metal2).
pub fn tap(
    tech: impl IntoGenCtx,
    obj: &mut LayoutObject,
    net: &str,
    port_rect: Rect,
    east: bool,
    street_x: Coord,
) -> Result<Point, String> {
    let tech = tech.into_gen_ctx();
    let end = bus_end(port_rect, east);
    h_m2(&tech, obj, net, end.y, end.x, street_x);
    let p = Point::new(street_x, end.y);
    via(&tech, obj, net, p)?;
    Ok(p)
}

/// Enters a block horizontally to land on a metal1 column (a contact-row
/// port inside an unguarded module): metal2 from `street_x` to the
/// column's centre at `entry_y`, via down into the column.
pub fn enter_column(
    tech: impl IntoGenCtx,
    obj: &mut LayoutObject,
    net: &str,
    column: Rect,
    entry_y: Coord,
    street_x: Coord,
) -> Result<Point, String> {
    let tech = tech.into_gen_ctx();
    let cx = column.center().x;
    h_m2(&tech, obj, net, entry_y, street_x, cx);
    via(&tech, obj, net, Point::new(cx, entry_y))?;
    via(&tech, obj, net, Point::new(street_x, entry_y))?;
    Ok(Point::new(street_x, entry_y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    #[test]
    fn tap_plus_drop_connects_a_bus_to_a_rail() {
        let t = Tech::bicmos_1u();
        let m2 = t.layer("metal2").unwrap();
        let mut obj = LayoutObject::new("x");
        let sig = obj.net("sig");
        let bus = Rect::new(0, um(20), um(30), um(22));
        obj.push(Shape::new(m2, bus).with_net(sig));
        // Tap east into a street at x = 40 um, drop to a rail at y = 0.
        let p = tap(&t, &mut obj, "sig", bus, true, um(40)).unwrap();
        v_m1(&t, &mut obj, "sig", p.x, p.y, 0);
        via(&t, &mut obj, "sig", Point::new(p.x, 0)).unwrap();
        h_m2(&t, &mut obj, "sig", 0, um(35), um(45));
        let nets = Extractor::new(&t).connectivity(&obj);
        assert_eq!(nets.len(), 1, "{nets:?}");
    }

    #[test]
    fn vertical_m1_crosses_foreign_m2_without_connecting() {
        let t = Tech::bicmos_1u();
        let mut obj = LayoutObject::new("x");
        h_m2(&t, &mut obj, "a", um(5), 0, um(20));
        v_m1(&t, &mut obj, "b", um(10), 0, um(10));
        let nets = Extractor::new(&t).connectivity(&obj);
        assert_eq!(nets.len(), 2, "layers cross without shorting");
    }

    #[test]
    fn bus_end_points() {
        let r = Rect::new(0, 0, um(10), um(2));
        assert_eq!(bus_end(r, true), Point::new(um(10), um(1)));
        assert_eq!(bus_end(r, false), Point::new(0, um(1)));
    }

    #[test]
    fn enter_column_lands_on_metal1() {
        let t = Tech::bicmos_1u();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        let sig = obj.net("sig");
        let column = Rect::new(um(20), 0, um(22), um(10));
        obj.push(Shape::new(m1, column).with_net(sig));
        enter_column(&t, &mut obj, "sig", column, um(5), um(40)).unwrap();
        let nets = Extractor::new(&t).connectivity(&obj);
        assert_eq!(nets.len(), 1, "{nets:?}");
    }
}

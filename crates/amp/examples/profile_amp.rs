use amgen_amp::build_amplifier;
use amgen_tech::Tech;
use std::time::Instant;

fn main() {
    let t = Tech::bicmos_1u();
    let t0 = Instant::now();
    let (amp, _) = build_amplifier(&t).unwrap();
    eprintln!("total {:?} ({} shapes)", t0.elapsed(), amp.len());
    let t0 = Instant::now();
    let _ = amgen_extract::Extractor::new(&t).connectivity(&amp);
    eprintln!("connectivity {:?}", t0.elapsed());
    let t0 = Instant::now();
    let _ = amgen_drc::Drc::new(&t).check_spacing(&amp);
    eprintln!("check_spacing {:?}", t0.elapsed());
    let t0 = Instant::now();
    let _ = amgen_extract::Extractor::new(&t).parasitics(&amp);
    eprintln!("parasitics {:?}", t0.elapsed());
}

//! The procedural layout description language (§2.1 of the paper).
//!
//! *"The new procedural language enables the designer to describe
//! parameterizable modules for analog integrated circuits hierarchically
//! and design-rule independent. This language features loops, conditional
//! statements and a set of simple functions to create and to wire
//! primitive geometries without considering exact coordinates."*
//!
//! The concrete syntax follows the paper's Figs. 2 and 7:
//!
//! ```text
//! gatecon = ContactRow(layer = "poly", W = 1)
//!
//! ENT ContactRow(layer, <W>, <L>)
//!   INBOX(layer, W, L)
//!   INBOX("metal1")
//!   ARRAY("contact")
//! ```
//!
//! * `ENT name(params)` declares an entity; `<param>` marks an optional
//!   parameter (*"if an optional parameter is omitted, a default value is
//!   used"* — the design-rule minimum).
//! * Geometry builtins (`INBOX`, `ARRAY`, `TWORECTS`, `RING`, `AROUND`)
//!   operate on the entity's own layout object; `compact(child, DIR,
//!   layers...)` folds a child object in through the successive
//!   compactor.
//! * `name2 = name1` copies an object (`trans2 = trans1 // copy`).
//! * `FOR v = a TO b ... END` and `IF cond ... ELSE ... END` provide
//!   loops and conditions.
//! * `VARIANT ... OR ... END` declares **topology alternatives**; the
//!   interpreter explores every combination (the paper's backtracking)
//!   and [`Interpreter::run`] rates them with the optimizer's
//!   rating function to select the winner.
//!
//! Numbers are micrometres (`W = 10` is a 10 µm width); they convert to
//! integer database units internally. The original environment translated
//! the language to C — here it is interpreted, which changes constant
//! factors only (see DESIGN.md, substitutions).
//!
//! # Example
//!
//! ```
//! use amgen_dsl::Interpreter;
//! use amgen_tech::Tech;
//!
//! let tech = Tech::bicmos_1u();
//! let src = r#"
//! row = ContactRow(layer = "poly", W = 10)
//!
//! ENT ContactRow(layer, <W>, <L>)
//!   INBOX(layer, W, L)
//!   INBOX("metal1")
//!   ARRAY("contact")
//! "#;
//! let mut interp = Interpreter::new(&tech);
//! let objects = interp.run(src).unwrap();
//! assert!(objects.contains_key("row"));
//! ```

pub mod ast;
pub mod costmodel;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod stdlib;
pub mod value;

pub use interp::{DslError, Interpreter};
pub use span::Span;
pub use value::Value;

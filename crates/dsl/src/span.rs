//! Source spans: where a token, expression or statement came from.
//!
//! A [`Span`] is a half-open byte range into the original source string
//! plus the 1-based line and column of its first byte. Spans are carried
//! from the lexer through the parser into every AST node so that
//! downstream tooling — the static analyzer's diagnostics above all —
//! can point at the exact offending text instead of a whole line.
//!
//! A zero span ([`Span::NONE`]) marks synthesized nodes (programs built
//! in code rather than parsed); renderers treat `line == 0` as "no
//! location".

/// A source location: byte range plus human line/column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based source line of the first byte; 0 for synthesized nodes.
    pub line: u32,
    /// 1-based byte column of the first byte within its line; 0 for
    /// synthesized nodes.
    pub col: u32,
    /// Byte offset of the first byte in the source string.
    pub start: u32,
    /// Byte offset one past the last byte (half-open).
    pub end: u32,
}

impl Span {
    /// The empty span of synthesized nodes.
    pub const NONE: Span = Span {
        line: 0,
        col: 0,
        start: 0,
        end: 0,
    };

    /// A span from explicit parts.
    pub fn new(line: u32, col: u32, start: u32, end: u32) -> Span {
        Span {
            line,
            col,
            start,
            end,
        }
    }

    /// True for the spans of synthesized (non-parsed) nodes.
    pub fn is_none(&self) -> bool {
        self.line == 0
    }

    /// Length of the spanned text in bytes (at least 1 for rendering a
    /// caret even on empty spans).
    pub fn len(&self) -> usize {
        (self.end.saturating_sub(self.start)).max(1) as usize
    }

    /// Never empty for rendering purposes; see [`Span::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The smallest span covering both `self` and `other`. A `NONE`
    /// operand yields the other span unchanged.
    pub fn join(self, other: Span) -> Span {
        if self.is_none() {
            return other;
        }
        if other.is_none() {
            return self;
        }
        let (first, last) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            line: first.line,
            col: first.col,
            start: first.start,
            end: first.end.max(last.end),
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            write!(f, "<unknown>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_covers_both_operands() {
        let a = Span::new(1, 1, 0, 3);
        let b = Span::new(1, 7, 6, 10);
        let j = a.join(b);
        assert_eq!((j.start, j.end), (0, 10));
        assert_eq!((j.line, j.col), (1, 1));
        assert_eq!(b.join(a), j);
    }

    #[test]
    fn none_is_a_join_identity() {
        let a = Span::new(2, 4, 10, 12);
        assert_eq!(Span::NONE.join(a), a);
        assert_eq!(a.join(Span::NONE), a);
        assert!(Span::NONE.is_none());
        assert_eq!(Span::NONE.to_string(), "<unknown>");
        assert_eq!(a.to_string(), "2:4");
    }

    #[test]
    fn len_is_at_least_one() {
        assert_eq!(Span::NONE.len(), 1);
        assert_eq!(Span::new(1, 1, 5, 9).len(), 4);
    }
}

//! Tree-walking interpreter with backtracking over topology variants.

use std::collections::{BTreeMap, HashMap};

use amgen_compact::{CompactOptions, Compactor};
use amgen_core::{FaultSite, GenCtx, GenError, IntoGenCtx, Resource, Stage};
use amgen_db::LayoutObject;
use amgen_geom::Dir;
use amgen_opt::{Optimizer, RatingWeights};
use amgen_prim::Primitives;
use amgen_tech::RuleSet;

use crate::ast::{BinOp, Call, Entity, Expr, Program, Stmt};
use crate::parser::{parse, ParseError};
use crate::value::Value;

/// Errors from parsing or executing the language.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DslError {
    /// Budget exhaustion, cancellation or an injected fault, from the
    /// shared generation context. Raised by the per-statement fuel meter,
    /// the entity recursion cap, and any primitive the program invokes.
    Gen(GenError),
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Execution failed.
    Runtime {
        /// Source line of the failing statement.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A `VARIANT` exploration exceeded the configured limit.
    TooManyVariants(usize),
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DslError::Gen(e) => write!(f, "{e}"),
            DslError::Parse(e) => write!(f, "parse error: {e}"),
            // Line 0 marks a synthesized statement (no source location);
            // a phantom "line 0:" prefix would point nowhere.
            DslError::Runtime { line: 0, message } => write!(f, "{message}"),
            DslError::Runtime { line, message } => write!(f, "line {line}: {message}"),
            DslError::TooManyVariants(n) => {
                write!(f, "variant exploration exceeded {n} combinations")
            }
        }
    }
}

impl std::error::Error for DslError {}

impl From<ParseError> for DslError {
    fn from(e: ParseError) -> DslError {
        DslError::Parse(e)
    }
}

impl From<GenError> for DslError {
    fn from(e: GenError) -> DslError {
        DslError::Gen(e)
    }
}

impl From<DslError> for GenError {
    /// Unifies interpreter failures under the `amgen-core` error: typed
    /// robustness errors pass through, language-specific ones are wrapped
    /// with [`Stage::Dsl`] context.
    fn from(e: DslError) -> GenError {
        match e {
            DslError::Gen(g) => g,
            other => GenError::stage_msg(Stage::Dsl, other.to_string()),
        }
    }
}

/// The interpreter, bound to one technology.
///
/// Entities accumulate across [`Interpreter::run`] calls, so a library
/// source can be loaded first and instantiated later.
pub struct Interpreter {
    ctx: GenCtx,
    /// Name → entity, in a `BTreeMap` so every iteration over the
    /// library (diagnostics, the library hash below) is in name order —
    /// a `HashMap` here once leaked its arbitrary iteration order into
    /// outputs, which is fatal for content-addressed caching.
    entities: BTreeMap<String, Entity>,
    /// Hash over the whole registered library (names + pretty-printed
    /// bodies, in name order). Part of every entity cache key: loading
    /// or redefining *any* entity invalidates all cached entity results,
    /// so transitive callees can never be served stale.
    lib_hash: u64,
    /// Cap on explored variant combinations (backtracking).
    pub max_variants: usize,
    weights: RatingWeights,
}

/// Signals raised during execution of one choice assignment.
enum Exec {
    /// Execution hit a `VARIANT` statement beyond the fixed prefix and
    /// needs `arity` alternatives explored.
    NeedChoice(usize),
    /// A hard error.
    Fail(DslError),
}

struct Ctx<'a> {
    choices: &'a [usize],
    cursor: usize,
    /// Current entity-call nesting depth, checked against the budget's
    /// recursion cap so runaway (mutually) recursive entities surface as
    /// a typed error instead of a native stack overflow.
    depth: usize,
}

struct Frame {
    vars: HashMap<String, Value>,
    obj: LayoutObject,
}

impl Interpreter {
    /// Creates an interpreter.
    pub fn new(tech: impl IntoGenCtx) -> Interpreter {
        Interpreter {
            ctx: tech.into_gen_ctx(),
            entities: BTreeMap::new(),
            lib_hash: 0,
            max_variants: crate::costmodel::DEFAULT_MAX_VARIANTS,
            weights: RatingWeights::default(),
        }
    }

    /// The shared generation context.
    pub fn ctx(&self) -> &GenCtx {
        &self.ctx
    }

    /// The compiled rule kernel.
    pub fn rules(&self) -> &RuleSet {
        &self.ctx.rules
    }

    /// The registered entities, in name order. Static tooling (the
    /// `amgen-lint` checker) reads these to resolve cross-source entity
    /// references against the interpreter's accumulated library; the
    /// deterministic order keeps its diagnostics byte-stable across
    /// runs.
    pub fn entities(&self) -> impl Iterator<Item = &Entity> {
        self.entities.values()
    }

    /// The FNV-1a hash of the registered entity library — the `source`
    /// component of every DSL [`GenKey`](amgen_core::GenKey) this
    /// interpreter produces. Deterministic across processes (it hashes
    /// the pretty-printed library, not addresses), which is what lets a
    /// cache snapshot taken by one process validate in another.
    pub fn lib_hash(&self) -> u64 {
        self.lib_hash
    }

    /// Registers the entities of a source without running its top level.
    pub fn load(&mut self, src: &str) -> Result<(), DslError> {
        let prog = parse(src)?;
        self.register(&prog);
        Ok(())
    }

    /// Registers already-parsed entities without running anything — the
    /// amortized form of [`Interpreter::load`] for a serving front-end
    /// that parses its library sources once and reuses the ASTs across
    /// thousands of per-request interpreters. Pass *unbound* entities
    /// (fresh from [`parse`]): their layer-name literals are interned
    /// against this interpreter's rule kernel here, and an entity whose
    /// literals were already bound by another interpreter would keep the
    /// other kernel's layer handles.
    pub fn load_entities(&mut self, entities: impl IntoIterator<Item = Entity>) {
        let mut registered = false;
        for mut e in entities {
            bind_block(&self.ctx, &mut e.body);
            self.entities.insert(e.name.clone(), e);
            registered = true;
        }
        if registered {
            self.lib_hash = self.compute_lib_hash();
        }
    }

    fn register(&mut self, prog: &Program) {
        for e in &prog.entities {
            let mut e = e.clone();
            bind_block(&self.ctx, &mut e.body);
            self.entities.insert(e.name.clone(), e);
        }
        if !prog.entities.is_empty() {
            self.lib_hash = self.compute_lib_hash();
        }
    }

    /// FNV-1a over the pretty-printed library in name order. Printing
    /// strips spans (cosmetic whitespace in the source does not change
    /// the hash) but keeps everything that affects execution.
    fn compute_lib_hash(&self) -> u64 {
        let mut text = String::new();
        for e in self.entities.values() {
            crate::pretty::print_entity(e, &mut text);
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in text.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Parses and runs a source: entities are registered, the top-level
    /// statements execute, and every top-level variable holding an object
    /// is returned by name.
    ///
    /// When the program contains `VARIANT` statements, all combinations
    /// are explored (bounded by [`Interpreter::max_variants`]) and the
    /// combination whose objects rate best — the paper's rating function,
    /// area plus electrical conditions — is returned.
    pub fn run(&mut self, src: &str) -> Result<BTreeMap<String, LayoutObject>, DslError> {
        let mut prog = parse(src)?;
        self.register(&prog);
        bind_block(&self.ctx, &mut prog.top);
        let runs = self.run_variants(&prog.top)?;
        let opt = Optimizer::new(&self.ctx, self.weights);
        runs.into_iter()
            .min_by(|a, b| {
                let ra: f64 = a.values().map(|o| opt.rate(o).score).sum();
                let rb: f64 = b.values().map(|o| opt.rate(o).score).sum();
                ra.total_cmp(&rb)
            })
            .ok_or(DslError::Runtime {
                line: 0,
                message: "no variant combination completed".into(),
            })
    }

    /// Runs a program and additionally returns a **snapshot after every
    /// top-level statement**: the pretty-printed statement and the object
    /// map at that point. This is the stand-in for the original
    /// environment's twin-window IDE (*"a text window for the source code
    /// and a corresponding graphical view of the module"*) — render each
    /// snapshot with `amgen-export` to watch the module grow.
    ///
    /// Programs containing `VARIANT` are rejected (a trace of a
    /// backtracking search has no single timeline).
    #[allow(clippy::type_complexity)]
    pub fn run_traced(
        &mut self,
        src: &str,
    ) -> Result<
        (
            BTreeMap<String, LayoutObject>,
            Vec<(String, BTreeMap<String, LayoutObject>)>,
        ),
        DslError,
    > {
        // Clone the counter handle so the timer does not pin `self`.
        let metrics = std::sync::Arc::clone(&self.ctx.metrics);
        let _timer = metrics.stage_timer(Stage::Dsl);
        let mut prog = parse(src)?;
        self.register(&prog);
        bind_block(&self.ctx, &mut prog.top);
        let mut snapshots = Vec::new();
        let mut frame = Frame {
            vars: HashMap::new(),
            obj: LayoutObject::new("top"),
        };
        for stmt in &prog.top {
            let mut ctx = Ctx {
                choices: &[],
                cursor: 0,
                depth: 0,
            };
            match self.exec_stmt(stmt, &mut frame, &mut ctx) {
                Ok(()) => {}
                Err(Exec::NeedChoice(_)) => {
                    return Err(DslError::Runtime {
                        line: stmt.line(),
                        message: "run_traced does not support VARIANT programs".into(),
                    })
                }
                Err(Exec::Fail(e)) => return Err(e),
            }
            let mut printed = String::new();
            crate::pretty::print_stmt(stmt, 0, &mut printed);
            let state: BTreeMap<String, LayoutObject> = frame
                .vars
                .iter()
                .filter_map(|(k, v)| match v {
                    Value::Obj(o) => Some((k.clone(), o.clone())),
                    _ => None,
                })
                .collect();
            snapshots.push((printed.trim_end().to_string(), state));
        }
        let final_map = snapshots.last().map(|(_, m)| m.clone()).unwrap_or_default();
        Ok((final_map, snapshots))
    }

    /// Runs the top level once per variant combination, returning every
    /// completed result (the backtracking facility of the paper, §2.4).
    pub fn run_variants(
        &self,
        top: &[Stmt],
    ) -> Result<Vec<BTreeMap<String, LayoutObject>>, DslError> {
        let _timer = self.ctx.metrics.stage_timer(Stage::Dsl);
        let mut span = self.ctx.span(Stage::Dsl, || "run_variants");
        let mut results = Vec::new();
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        let mut explored = 0usize;
        while let Some(prefix) = stack.pop() {
            explored += 1;
            if explored > self.max_variants {
                return Err(DslError::TooManyVariants(self.max_variants));
            }
            let mut ctx = Ctx {
                choices: &prefix,
                cursor: 0,
                depth: 0,
            };
            let mut frame = Frame {
                vars: HashMap::new(),
                obj: LayoutObject::new("top"),
            };
            match self.exec_block(top, &mut frame, &mut ctx) {
                Ok(()) => {
                    let map = frame
                        .vars
                        .into_iter()
                        .filter_map(|(k, v)| match v {
                            Value::Obj(o) => Some((k, o)),
                            _ => None,
                        })
                        .collect();
                    results.push(map);
                }
                Err(Exec::NeedChoice(arity)) => {
                    for i in (0..arity).rev() {
                        let mut next = prefix.clone();
                        next.push(i);
                        stack.push(next);
                    }
                }
                Err(Exec::Fail(e)) => return Err(e),
            }
        }
        span.arg("explored", explored);
        span.arg("completed", results.len());
        Ok(results)
    }

    /// Instantiates an entity by name with keyword arguments, returning
    /// the best-rated variant.
    pub fn eval_entity(
        &self,
        name: &str,
        args: &[(&str, Value)],
    ) -> Result<LayoutObject, DslError> {
        let variants = self.eval_entity_variants(name, args)?;
        let opt = Optimizer::new(&self.ctx, self.weights);
        let objs: Vec<LayoutObject> = variants;
        let (idx, _) = opt.select_variant(&objs).ok_or(DslError::Runtime {
            line: 0,
            message: "entity produced no variant".into(),
        })?;
        objs.into_iter().nth(idx).ok_or(DslError::Runtime {
            line: 0,
            message: "variant selection out of range".into(),
        })
    }

    /// Instantiates an entity, returning **all** topology variants.
    pub fn eval_entity_variants(
        &self,
        name: &str,
        args: &[(&str, Value)],
    ) -> Result<Vec<LayoutObject>, DslError> {
        let _timer = self.ctx.metrics.stage_timer(Stage::Dsl);
        let call = Call {
            name: name.to_string(),
            positional: Vec::new(),
            keyword: Vec::new(),
            span: crate::span::Span::NONE,
        };
        let mut results = Vec::new();
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        let mut explored = 0usize;
        while let Some(prefix) = stack.pop() {
            explored += 1;
            if explored > self.max_variants {
                return Err(DslError::TooManyVariants(self.max_variants));
            }
            let mut ctx = Ctx {
                choices: &prefix,
                cursor: 0,
                depth: 0,
            };
            let bound: Vec<(Option<String>, Value)> = args
                .iter()
                .map(|(k, v)| (Some(k.to_string()), v.clone()))
                .collect();
            match self.call_entity(&call, bound, &mut ctx) {
                Ok(obj) => results.push(obj),
                Err(Exec::NeedChoice(arity)) => {
                    for i in (0..arity).rev() {
                        let mut next = prefix.clone();
                        next.push(i);
                        stack.push(next);
                    }
                }
                Err(Exec::Fail(e)) => return Err(e),
            }
        }
        Ok(results)
    }

    // ----- execution ---------------------------------------------------

    fn fail<T>(&self, line: usize, message: impl Into<String>) -> Result<T, Exec> {
        Err(Exec::Fail(DslError::Runtime {
            line,
            message: message.into(),
        }))
    }

    /// Wraps a stage failure with the statement's source line — except
    /// typed robustness errors (budget exhaustion, cancellation, injected
    /// faults), which pass through as [`DslError::Gen`] so callers can
    /// still match on them.
    fn stage_fail(line: usize, e: impl Into<GenError> + ToString) -> Exec {
        let text = e.to_string();
        let g: GenError = e.into();
        match g.kind {
            amgen_core::GenErrorKind::Stage(_) => Exec::Fail(DslError::Runtime {
                line,
                message: text,
            }),
            _ => Exec::Fail(DslError::Gen(g)),
        }
    }

    fn exec_block(&self, body: &[Stmt], frame: &mut Frame, ctx: &mut Ctx) -> Result<(), Exec> {
        for stmt in body {
            self.exec_stmt(stmt, frame, ctx)?;
        }
        Ok(())
    }

    fn exec_stmt(&self, stmt: &Stmt, frame: &mut Frame, ctx: &mut Ctx) -> Result<(), Exec> {
        let line = stmt.line();
        // Every statement costs one unit of fuel, so any program — huge
        // FOR ranges and recursive entities included — terminates within
        // a finite budget with a typed error instead of hanging. The
        // amount comes from `costmodel` so the static certification pass
        // in `amgen-lint` prices statements identically.
        self.ctx
            .charge_fuel(crate::costmodel::FUEL_PER_STMT, Stage::Dsl)
            .map_err(|e| Exec::Fail(DslError::Gen(e)))?;
        self.ctx
            .fault_check(FaultSite::DslStmt, stmt.kind_name())
            .map_err(|e| Exec::Fail(DslError::Gen(e)))?;
        match stmt {
            Stmt::Assign { name, value, .. } => {
                let v = self.eval_expr(value, frame, ctx, line)?;
                frame.vars.insert(name.clone(), v);
                Ok(())
            }
            Stmt::Call(call) => {
                self.builtin(call, frame, ctx)?;
                Ok(())
            }
            Stmt::Compact {
                obj, dir, ignore, ..
            } => {
                let Some(Value::Obj(child)) = frame.vars.get(obj).cloned() else {
                    return self.fail(line, format!("`{obj}` is not an object"));
                };
                let Some(side) = Dir::parse(dir) else {
                    return self.fail(line, format!("unknown direction `{dir}`"));
                };
                let mut opts = CompactOptions::new();
                for e in ignore {
                    let v = self.eval_expr(e, frame, ctx, line)?;
                    // Bound programs carry the interned handle; a name
                    // computed at runtime still resolves through the
                    // front-end lookup.
                    match v {
                        Value::Layer(l, _) => opts.ignore.push(l),
                        other => {
                            let name = match other.as_str() {
                                Ok(s) => s.to_string(),
                                Err(m) => return self.fail(line, m),
                            };
                            match self.ctx.layer(&name) {
                                Ok(l) => opts.ignore.push(l),
                                Err(e) => return self.fail(line, e.to_string()),
                            }
                        }
                    }
                }
                let c = Compactor::new(&self.ctx);
                if let Err(e) = c.compact(&mut frame.obj, &child, side, &opts) {
                    return Err(Self::stage_fail(line, e));
                }
                Ok(())
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                let a = self
                    .eval_expr(from, frame, ctx, line)?
                    .as_num()
                    .map_err(|m| Exec::Fail(DslError::Runtime { line, message: m }))?;
                let b = self
                    .eval_expr(to, frame, ctx, line)?
                    .as_num()
                    .map_err(|m| Exec::Fail(DslError::Runtime { line, message: m }))?;
                let (a, b) = (a.round() as i64, b.round() as i64);
                for i in a..=b {
                    frame.vars.insert(var.clone(), Value::Num(i as f64));
                    self.exec_block(body, frame, ctx)?;
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let c = self.eval_expr(cond, frame, ctx, line)?;
                if c.truthy() {
                    self.exec_block(then_body, frame, ctx)
                } else {
                    self.exec_block(else_body, frame, ctx)
                }
            }
            Stmt::Variant { arms, .. } => {
                if arms.is_empty() {
                    return self.fail(line, "VARIANT has no arms");
                }
                if ctx.cursor >= ctx.choices.len() {
                    return Err(Exec::NeedChoice(arms.len()));
                }
                let pick = ctx.choices[ctx.cursor];
                ctx.cursor += 1;
                self.exec_block(&arms[pick.min(arms.len() - 1)], frame, ctx)
            }
        }
    }

    fn eval_expr(
        &self,
        expr: &Expr,
        frame: &mut Frame,
        ctx: &mut Ctx,
        line: usize,
    ) -> Result<Value, Exec> {
        match expr {
            Expr::Number(n, _) => Ok(Value::Num(*n)),
            Expr::Str(s, _) => Ok(Value::Str(s.clone())),
            Expr::Layer(l, name, _) => Ok(Value::Layer(*l, name.clone())),
            Expr::Var(name, _) => match frame.vars.get(name) {
                Some(v) => Ok(v.clone()),
                // Unknown identifiers read as Unset so that `INBOX(layer,
                // W, L)` works when W/L were omitted optional parameters.
                None => Ok(Value::Unset),
            },
            Expr::Neg(e, _) => {
                let v = self
                    .eval_expr(e, frame, ctx, line)?
                    .as_num()
                    .map_err(|m| Exec::Fail(DslError::Runtime { line, message: m }))?;
                Ok(Value::Num(-v))
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self
                    .eval_expr(lhs, frame, ctx, line)?
                    .as_num()
                    .map_err(|m| Exec::Fail(DslError::Runtime { line, message: m }))?;
                let b = self
                    .eval_expr(rhs, frame, ctx, line)?
                    .as_num()
                    .map_err(|m| Exec::Fail(DslError::Runtime { line, message: m }))?;
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => {
                        if b == 0.0 {
                            return self.fail(line, "division by zero");
                        }
                        a / b
                    }
                    BinOp::Eq => f64::from(a == b),
                    BinOp::Ne => f64::from(a != b),
                    BinOp::Lt => f64::from(a < b),
                    BinOp::Le => f64::from(a <= b),
                    BinOp::Gt => f64::from(a > b),
                    BinOp::Ge => f64::from(a >= b),
                };
                Ok(Value::Num(v))
            }
            Expr::Call(call) => {
                if self.entities.contains_key(&call.name) {
                    let bound = self.eval_args(call, frame, ctx)?;
                    let obj = self.call_entity(call, bound, ctx)?;
                    Ok(Value::Obj(obj))
                } else {
                    self.builtin(call, frame, ctx)
                }
            }
        }
    }

    fn eval_args(
        &self,
        call: &Call,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<Vec<(Option<String>, Value)>, Exec> {
        let mut out = Vec::new();
        for e in &call.positional {
            out.push((None, self.eval_expr(e, frame, ctx, call.line())?));
        }
        for (k, _, e) in &call.keyword {
            out.push((Some(k.clone()), self.eval_expr(e, frame, ctx, call.line())?));
        }
        Ok(out)
    }

    fn call_entity(
        &self,
        call: &Call,
        bound: Vec<(Option<String>, Value)>,
        ctx: &mut Ctx,
    ) -> Result<LayoutObject, Exec> {
        let entity = self.entities.get(&call.name).cloned().ok_or_else(|| {
            Exec::Fail(DslError::Runtime {
                line: call.line(),
                message: format!("unknown entity `{}`", call.name),
            })
        })?;
        let mut frame = Frame {
            vars: HashMap::new(),
            obj: LayoutObject::new(entity.name.clone()),
        };
        // Bind parameters: positional first, then keywords; missing
        // optionals become Unset, missing required are errors.
        let mut pos = 0usize;
        for (key, value) in bound {
            match key {
                None => {
                    let Some(p) = entity.params.get(pos) else {
                        return self.fail(call.line(), "too many positional arguments");
                    };
                    frame.vars.insert(p.name.clone(), value);
                    pos += 1;
                }
                Some(k) => {
                    if !entity.params.iter().any(|p| p.name == k) {
                        return self.fail(
                            call.line(),
                            format!("`{}` has no parameter `{k}`", entity.name),
                        );
                    }
                    frame.vars.insert(k, value);
                }
            }
        }
        for p in &entity.params {
            if !frame.vars.contains_key(&p.name) {
                if p.optional {
                    frame.vars.insert(p.name.clone(), Value::Unset);
                } else {
                    return self.fail(
                        call.line(),
                        format!("missing required parameter `{}`", p.name),
                    );
                }
            }
        }
        // Reject NaN parameters outright — downstream dimension math
        // would silently cast NaN to a 0 coordinate, and `NaN != NaN`
        // makes a NaN-keyed cache entry unreachable-by-equality. This is
        // a bugfix independent of caching, so it runs unconditionally.
        for p in &entity.params {
            if let Some(Value::Num(n)) = frame.vars.get(&p.name) {
                if n.is_nan() {
                    return Err(Exec::Fail(DslError::Gen(
                        GenError::stage_msg(Stage::Dsl, format!("parameter `{}` is NaN", p.name))
                            .with_entity(&entity.name),
                    )));
                }
            }
        }
        // Canonical cache key: entity name + tech brand + library hash +
        // the bound parameters in declaration order (never map-iteration
        // order).
        let key = self.entity_key(&entity, &frame);
        if let Some(k) = &key {
            if let Some(hit) = self.ctx.cache_get(Stage::Dsl, k) {
                return Ok(hit.layout.clone());
            }
        }
        let mut span = self
            .ctx
            .span(Stage::Dsl, || amgen_core::name!("entity:{}", entity.name));
        if ctx.depth >= self.ctx.limits.budget().max_recursion {
            return Err(Exec::Fail(DslError::Gen(
                GenError::budget(Stage::Dsl, Resource::Recursion).with_entity(&entity.name),
            )));
        }
        ctx.depth += 1;
        let cursor_before = ctx.cursor;
        let executed = self.exec_block(&entity.body, &mut frame, ctx);
        ctx.depth -= 1;
        executed?;
        span.arg("shapes", frame.obj.len());
        // Store only when the body consumed no VARIANT choices: a
        // choice-consuming execution is not a pure function of the key
        // (the same call re-runs under different choice prefixes during
        // backtracking).
        if let Some(k) = key {
            if ctx.cursor == cursor_before {
                self.ctx.cache_put(
                    k,
                    std::sync::Arc::new(amgen_core::CachedModule::layout(frame.obj.clone())),
                );
            }
        }
        Ok(frame.obj)
    }

    /// Builds the canonical key for an entity call, or `None` when
    /// caching is inactive (then the key would be dead work).
    fn entity_key(&self, entity: &Entity, frame: &Frame) -> Option<amgen_core::GenKey> {
        use amgen_core::CanonParam;
        if !self.ctx.cache_active() {
            return None;
        }
        let mut key = amgen_core::GenKey::entity(&entity.name, self.ctx.id(), self.lib_hash);
        for p in &entity.params {
            let param = match frame.vars.get(&p.name) {
                // NaN was rejected above, so canonicalization cannot fail.
                Some(Value::Num(n)) => CanonParam::num(Stage::Dsl, *n).ok()?,
                Some(Value::Str(s)) => CanonParam::Str(s.clone()),
                Some(Value::Layer(l, _)) => CanonParam::UInt(l.index() as u64),
                Some(Value::Obj(o)) => CanonParam::object(o),
                Some(Value::Unset) | None => CanonParam::None,
            };
            key.push(param);
        }
        Some(key)
    }

    /// Geometry builtins operating on the current frame's object.
    fn builtin(&self, call: &Call, frame: &mut Frame, ctx: &mut Ctx) -> Result<Value, Exec> {
        let line = call.line();
        let args = self.eval_args(call, frame, ctx)?;
        // Count the shapes this call appends, so the dynamic counter and
        // amgen-lint's certified shape bound measure the same thing.
        let shapes_before = frame.obj.len();
        let prim = Primitives::new(&self.ctx);
        // Helpers over the bound argument list.
        let get = |idx: usize, key: &str| -> Value {
            let mut seen_pos = 0usize;
            for (k, v) in &args {
                match k {
                    None => {
                        if seen_pos == idx {
                            return v.clone();
                        }
                        seen_pos += 1;
                    }
                    Some(k) if k == key => return v.clone(),
                    _ => {}
                }
            }
            Value::Unset
        };
        let layer_arg = |idx: usize, key: &str| -> Result<amgen_tech::Layer, Exec> {
            // The bind pass interned literal layer names, so the common
            // case is handle extraction; only names computed at runtime
            // fall back to the front-end string lookup.
            match get(idx, key) {
                Value::Layer(l, _) => Ok(l),
                v => {
                    let name = v
                        .as_str()
                        .map_err(|m| Exec::Fail(DslError::Runtime { line, message: m }))?
                        .to_string();
                    self.ctx.layer(&name).map_err(|e| {
                        Exec::Fail(DslError::Runtime {
                            line,
                            message: e.to_string(),
                        })
                    })
                }
            }
        };
        let dim_arg = |idx: usize, key: &str| -> Result<Option<amgen_geom::Coord>, Exec> {
            get(idx, key)
                .as_dim()
                .map_err(|m| Exec::Fail(DslError::Runtime { line, message: m }))
        };
        let result = match call.name.as_str() {
            "INBOX" => {
                let layer = layer_arg(0, "layer")?;
                let w = dim_arg(1, "W")?;
                let l = dim_arg(2, "L")?;
                prim.inbox(&mut frame.obj, layer, w, l)
                    .map_err(|e| Self::stage_fail(line, e))?;
                Ok(Value::Unset)
            }
            "ARRAY" => {
                let layer = layer_arg(0, "layer")?;
                prim.array(&mut frame.obj, layer)
                    .map_err(|e| Self::stage_fail(line, e))?;
                Ok(Value::Unset)
            }
            "AROUND" => {
                let layer = layer_arg(0, "layer")?;
                let extra = dim_arg(1, "extra")?.unwrap_or(0);
                prim.around(&mut frame.obj, layer, extra)
                    .map_err(|e| Self::stage_fail(line, e))?;
                Ok(Value::Unset)
            }
            "RING" => {
                let layer = layer_arg(0, "layer")?;
                let w = dim_arg(1, "W")?;
                let cl = dim_arg(2, "clearance")?;
                prim.ring(&mut frame.obj, layer, w, cl)
                    .map_err(|e| Self::stage_fail(line, e))?;
                Ok(Value::Unset)
            }
            "TWORECTS" => {
                let la = layer_arg(0, "a")?;
                let lb = layer_arg(1, "b")?;
                let w = dim_arg(2, "W")?;
                let l = dim_arg(3, "L")?;
                prim.two_rects(&mut frame.obj, la, lb, w, l)
                    .map_err(|e| Self::stage_fail(line, e))?;
                Ok(Value::Unset)
            }
            "NET" => {
                let name = get(0, "name");
                let name = name
                    .as_str()
                    .map_err(|m| Exec::Fail(DslError::Runtime { line, message: m }))?
                    .to_string();
                let id = frame.obj.net(&name);
                for s in frame.obj.shapes_mut() {
                    if s.net.is_none() {
                        s.net = Some(id);
                    }
                }
                Ok(Value::Unset)
            }
            other => self.fail(line, format!("unknown function or entity `{other}`")),
        };
        if result.is_ok() {
            let delta = frame.obj.len().saturating_sub(shapes_before);
            if delta > 0 {
                self.ctx.metrics.add_shapes_generated(delta as u64);
            }
        }
        result
    }
}

// ----- bind pass --------------------------------------------------------
//
// The one place in the pipeline where layer *names* are resolved: every
// string literal that names a layer of the bound technology is rewritten
// to an interned [`Expr::Layer`] handle once, at program load, so
// execution — including every iteration of a FOR loop and every variant
// of a backtracking search — performs index arithmetic only. Strings
// that do not name a layer (net names, directions) are left untouched,
// and the handle keeps its spelling so string contexts still work.

fn bind_block(ctx: &GenCtx, stmts: &mut [Stmt]) {
    for s in stmts {
        bind_stmt(ctx, s);
    }
}

fn bind_stmt(ctx: &GenCtx, stmt: &mut Stmt) {
    match stmt {
        Stmt::Assign { value, .. } => bind_expr(ctx, value),
        Stmt::Call(call) => bind_call(ctx, call),
        Stmt::Compact { ignore, .. } => {
            for e in ignore {
                bind_expr(ctx, e);
            }
        }
        Stmt::For { from, to, body, .. } => {
            bind_expr(ctx, from);
            bind_expr(ctx, to);
            bind_block(ctx, body);
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            bind_expr(ctx, cond);
            bind_block(ctx, then_body);
            bind_block(ctx, else_body);
        }
        Stmt::Variant { arms, .. } => {
            for arm in arms {
                bind_block(ctx, arm);
            }
        }
    }
}

fn bind_expr(ctx: &GenCtx, expr: &mut Expr) {
    match expr {
        Expr::Str(s, span) => {
            if let Ok(l) = ctx.layer(s) {
                *expr = Expr::Layer(l, std::mem::take(s), *span);
            }
        }
        Expr::Call(call) => bind_call(ctx, call),
        Expr::Neg(inner, _) => bind_expr(ctx, inner),
        Expr::Binary { lhs, rhs, .. } => {
            bind_expr(ctx, lhs);
            bind_expr(ctx, rhs);
        }
        Expr::Number(..) | Expr::Var(..) | Expr::Layer(..) => {}
    }
}

fn bind_call(ctx: &GenCtx, call: &mut Call) {
    for e in &mut call.positional {
        bind_expr(ctx, e);
    }
    for (_, _, e) in &mut call.keyword {
        bind_expr(ctx, e);
    }
}

//! The interpreter's cost model, as constants static analysis can share.
//!
//! `amgen-lint`'s certification pass derives symbolic upper bounds on
//! what a program will consume *before* it runs. Those bounds are only
//! sound if the analyzer and the interpreter agree on what each
//! construct costs — so the accounting lives here, in one place, and
//! both sides read it:
//!
//! * the interpreter charges [`FUEL_PER_STMT`] per executed statement
//!   (`interp.rs::exec_stmt`);
//! * one `compact` statement performs exactly one `Compactor::compact`
//!   call, i.e. [`COMPACT_STEPS_PER_STMT`] budget steps;
//! * `FOR` bounds are *rounded* before iterating (`a.round()..=
//!   b.round()`), so a static trip-count bound over real-valued bounds
//!   needs [`FOR_TRIP_SLACK`] extra iterations of headroom;
//! * backtracking explores at most [`DEFAULT_MAX_VARIANTS`] choice
//!   prefixes unless the caller raises `Interpreter::max_variants`;
//! * each geometry builtin appends a statically known number of shapes
//!   ([`builtin_shapes`]) — except `ARRAY`, whose cut count depends on
//!   the frame geometry and the rule deck.

/// Fuel units charged per executed statement. Every statement — assign,
/// call, `compact`, the `FOR`/`IF`/`VARIANT` headers — costs the same
/// one unit; expressions are free.
pub const FUEL_PER_STMT: u64 = 1;

/// Compaction-budget steps one `compact` statement charges.
pub const COMPACT_STEPS_PER_STMT: u64 = 1;

/// Headroom a static trip-count bound must add over `to − from`.
///
/// The interpreter rounds both bounds to the nearest integer, so with
/// `from ∈ [a_lo, …]` and `to ∈ […, b_hi]` the iteration count is at
/// most `round(b_hi) − round(a_lo) + 1 ≤ (b_hi + ½) − (a_lo − ½) + 1`,
/// i.e. `b_hi − a_lo` plus this slack.
pub const FOR_TRIP_SLACK: f64 = 2.0;

/// Default cap on explored variant combinations
/// (`Interpreter::max_variants`). The backtracker aborts with
/// `DslError::TooManyVariants` beyond it, so even a program whose
/// choice space is statically unbounded re-executes its top level at
/// most this many times.
pub const DEFAULT_MAX_VARIANTS: usize = 64;

/// How many shapes one geometry-builtin call appends to the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeCost {
    /// Exactly `n` shapes, independent of geometry.
    Const(u64),
    /// A data-dependent contact grid: `(span + space) / (size + space)`
    /// cuts per axis of the surrounding frame. Statically bounded only
    /// under an assumed maximum frame extent.
    ArrayGrid,
}

/// The shape cost of a builtin, `None` for unknown names. Mirrors
/// `amgen-prim`: `inbox`/`around` append one rectangle, `two_rects`
/// two, `ring` four, `NET` only tags existing shapes.
pub fn builtin_shapes(name: &str) -> Option<ShapeCost> {
    match name {
        "INBOX" | "AROUND" => Some(ShapeCost::Const(1)),
        "TWORECTS" => Some(ShapeCost::Const(2)),
        "RING" => Some(ShapeCost::Const(4)),
        "NET" => Some(ShapeCost::Const(0)),
        "ARRAY" => Some(ShapeCost::ArrayGrid),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_has_a_shape_cost() {
        for name in ["INBOX", "ARRAY", "AROUND", "RING", "TWORECTS", "NET"] {
            assert!(builtin_shapes(name).is_some(), "{name}");
        }
        assert_eq!(builtin_shapes("NOPE"), None);
    }
}

//! The paper's module sources, verbatim where the paper prints them.

/// Fig. 2: the contact row. *"With these three primitive function-calls a
/// complete parameterizable contact row is described without specifying
/// or calculating an exact coordinate and without evaluating a design
/// rule."*
pub const FIG2_CONTACT_ROW: &str = r#"
ENT ContactRow(layer, <W>, <L>)
  INBOX(layer, W, L)
  INBOX("metal1")
  ARRAY("contact")
"#;

/// Fig. 7: the hierarchical MOS differential pair (five compaction
/// steps). Needs [`FIG2_CONTACT_ROW`] loaded as well.
pub const FIG7_DIFF_PAIR: &str = r#"
ENT Trans(<W>, <L>)
  TWORECTS("poly", "pdiff", W, L)
  polycon = ContactRow(layer = "poly", L = L)
  compact(polycon, SOUTH, "poly")   // step 1
  diffcon = ContactRow(layer = "pdiff", L = W)
  compact(diffcon, EAST, "pdiff")   // step 2

ENT DiffPair(<W>, <L>)
  trans1 = Trans(W = W, L = L)
  trans2 = trans1 // copy of trans1
  diffcon = ContactRow(layer = "pdiff", L = W)
  compact(trans1, WEST, "pdiff")  // step 3
  compact(trans2, WEST, "pdiff")  // step 4
  compact(diffcon, WEST, "pdiff") // step 5
"#;

/// An inter-digitated transistor written with the language's loop —
/// *"this language features loops, conditional statements ..."*.
pub const INTERDIGIT: &str = r#"
ENT Finger(<W>, <L>)
  TWORECTS("poly", "pdiff", W, L)
  diffcon = ContactRow(layer = "pdiff", L = W)
  compact(diffcon, EAST, "pdiff")

ENT Interdigit(<n>, <W>, <L>)
  seed = ContactRow(layer = "pdiff", L = W)
  compact(seed, WEST, "pdiff")
  FOR i = 1 TO n
    t = Finger(W = W, L = L)
    compact(t, EAST, "pdiff")
  END
"#;

/// A stacked transistor written in the language: `n` series gates over
/// one diffusion strip, contact rows only at the ends — one of the module
/// types the paper names (*"stacked transistors"*). The loop makes the
/// stack length a parameter.
pub const STACKED: &str = r#"
ENT Gate(<W>, <L>)
  TWORECTS("poly", "pdiff", W, L)

ENT Stacked(<n>, <W>, <L>)
  s = ContactRow(layer = "pdiff", L = W)
  compact(s, WEST, "pdiff")
  FOR i = 1 TO n
    g = Gate(W = W, L = L)
    compact(g, EAST, "pdiff")
  END
  d = ContactRow(layer = "pdiff", L = W)
  compact(d, EAST, "pdiff")
"#;

/// The placement of the paper's block E written **in the language**: a
/// centroidal cross-coupled arrangement with dummies — side dummies,
/// interleaved A/B pairs, centre dummies, the mirrored half, side
/// dummies, every unit separated by a shared source row.
///
/// The paper reports *"the source code for this complex module has a
/// length of about 180 lines"*; with loops and parameters the same
/// arrangement needs a fraction of that here (the harness counts the
/// lines). Internal bus wiring is the native generator's job
/// (`amgen-modgen::centroid`) — the language covers the matched
/// placement, which is what the 180 lines mostly bought in 1996.
pub const CENTROID_PLACEMENT: &str = r#"
ENT Gate(<W>, <L>)
  TWORECTS("poly", "pdiff", W, L)

ENT SRow(<W>)
  INBOX("pdiff", L = W)
  INBOX("metal1")
  ARRAY("contact")

ENT Dummies(<n>, <W>, <L>)
  FOR i = 1 TO n
    g = Gate(W = W, L = L)
    compact(g, EAST, "pdiff")
  END

ENT Pair(<W>, <L>)
  g1 = Gate(W = W, L = L)
  compact(g1, EAST, "pdiff")
  d = SRow(W = W)
  compact(d, EAST, "pdiff")
  g2 = Gate(W = W, L = L)
  compact(g2, EAST, "pdiff")

ENT CentroidE(<side>, <center>, <W>, <L>)
  s0 = SRow(W = W)
  compact(s0, WEST, "pdiff")
  dl = Dummies(n = side, W = W, L = L)
  compact(dl, EAST, "pdiff")
  s1 = SRow(W = W)
  compact(s1, EAST, "pdiff")
  a1 = Pair(W = W, L = L)
  compact(a1, EAST, "pdiff")
  s2 = SRow(W = W)
  compact(s2, EAST, "pdiff")
  b1 = Pair(W = W, L = L)
  compact(b1, EAST, "pdiff")
  s3 = SRow(W = W)
  compact(s3, EAST, "pdiff")
  dc = Dummies(n = center, W = W, L = L)
  compact(dc, EAST, "pdiff")
  s4 = SRow(W = W)
  compact(s4, EAST, "pdiff")
  b2 = Pair(W = W, L = L)
  compact(b2, EAST, "pdiff")
  s5 = SRow(W = W)
  compact(s5, EAST, "pdiff")
  a2 = Pair(W = W, L = L)
  compact(a2, EAST, "pdiff")
  s6 = SRow(W = W)
  compact(s6, EAST, "pdiff")
  dr = Dummies(n = side, W = W, L = L)
  compact(dr, EAST, "pdiff")
  s7 = SRow(W = W)
  compact(s7, EAST, "pdiff")
"#;

/// A module with two topology alternatives — the backtracking facility:
/// a contact row laid out horizontally or vertically; the rating function
/// picks whichever suits the context.
pub const VARIANT_ROW: &str = r#"
ENT FlexRow(layer, <S>)
  VARIANT
    INBOX(layer, W = S)   // horizontal row
  OR
    INBOX(layer, L = S)   // vertical row
  END
  INBOX("metal1")
  ARRAY("contact")
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use amgen_tech::Tech;

    #[test]
    fn all_stdlib_sources_parse() {
        for src in [
            FIG2_CONTACT_ROW,
            FIG7_DIFF_PAIR,
            INTERDIGIT,
            STACKED,
            VARIANT_ROW,
        ] {
            crate::parser::parse(src).unwrap();
        }
    }

    #[test]
    fn stdlib_loads_into_an_interpreter() {
        let t = Tech::bicmos_1u();
        let mut i = Interpreter::new(&t);
        i.load(FIG2_CONTACT_ROW).unwrap();
        i.load(FIG7_DIFF_PAIR).unwrap();
        i.load(INTERDIGIT).unwrap();
        i.load(STACKED).unwrap();
        i.load(VARIANT_ROW).unwrap();
    }

    #[test]
    fn stacked_builds_n_series_gates() {
        let t = Tech::bicmos_1u();
        let mut i = Interpreter::new(&t);
        i.load(FIG2_CONTACT_ROW).unwrap();
        i.load(STACKED).unwrap();
        let out = i.run("m = Stacked(n = 4, W = 6, L = 1)\n").unwrap();
        let poly = t.layer("poly").unwrap();
        let gates = out["m"]
            .shapes_on(poly)
            .filter(|s| s.rect.height() > 3 * s.rect.width())
            .count();
        assert_eq!(gates, 4);
        // Only the two end rows carry contacts.
        let ct = t.layer("contact").unwrap();
        let pdiff = t.layer("pdiff").unwrap();
        let diff_cuts = out["m"]
            .shapes_on(ct)
            .filter(|c| {
                out["m"]
                    .shapes_on(pdiff)
                    .any(|d| d.rect.contains_rect(&c.rect))
            })
            .count();
        let one_row = {
            let mut j = Interpreter::new(&t);
            j.load(FIG2_CONTACT_ROW).unwrap();
            let o = j.run("r = ContactRow(layer = \"pdiff\", L = 6)\n").unwrap();
            o["r"].shapes_on(ct).count()
        };
        assert_eq!(diff_cuts, 2 * one_row);
    }
}

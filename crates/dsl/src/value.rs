//! Runtime values of the layout description language.

use amgen_db::LayoutObject;
use amgen_geom::Coord;
use amgen_tech::Layer;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// A number. Dimensions are micrometres (the paper writes `W = 10`
    /// for a 10 µm width); loop counters are plain numbers.
    Num(f64),
    /// A string (layer or net name).
    Str(String),
    /// A layer handle interned at bind time, keeping its source spelling
    /// so contexts that want a string (net names, error messages) still
    /// see one.
    Layer(Layer, String),
    /// A layout object under construction or completed.
    Obj(LayoutObject),
    /// An omitted optional parameter — geometry functions substitute the
    /// design-rule default.
    Unset,
}

impl Value {
    /// Converts a micrometre number to database units; `Unset` becomes
    /// `None` (design-rule default), anything else is a type error.
    pub fn as_dim(&self) -> Result<Option<Coord>, String> {
        match self {
            Value::Num(v) => Ok(Some((v * 1_000.0).round() as Coord)),
            Value::Unset => Ok(None),
            other => Err(format!("expected a dimension, got {}", other.kind())),
        }
    }

    /// The numeric value, if any.
    pub fn as_num(&self) -> Result<f64, String> {
        match self {
            Value::Num(v) => Ok(*v),
            other => Err(format!("expected a number, got {}", other.kind())),
        }
    }

    /// The string value, if any. An interned layer reads back as its
    /// source spelling.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            Value::Layer(_, name) => Ok(name),
            other => Err(format!("expected a string, got {}", other.kind())),
        }
    }

    /// Truthiness: non-zero numbers are true.
    pub fn truthy(&self) -> bool {
        matches!(self, Value::Num(v) if *v != 0.0)
    }

    /// A short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Layer(..) => "layer",
            Value::Obj(_) => "object",
            Value::Unset => "unset",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_convert_micrometres() {
        assert_eq!(Value::Num(10.0).as_dim().unwrap(), Some(10_000));
        assert_eq!(Value::Num(1.5).as_dim().unwrap(), Some(1_500));
        assert_eq!(Value::Unset.as_dim().unwrap(), None);
        assert!(Value::Str("x".into()).as_dim().is_err());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Num(1.0).truthy());
        assert!(!Value::Num(0.0).truthy());
        assert!(!Value::Str("x".into()).truthy());
        assert!(!Value::Unset.truthy());
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Num(0.0).kind(), "number");
        assert_eq!(Value::Unset.kind(), "unset");
    }
}

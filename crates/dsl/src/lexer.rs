//! Tokenizer for the layout description language.

use crate::span::Span;

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Source location (line, column, byte range).
    pub span: Span,
}

impl Token {
    /// 1-based source line (shorthand for `span.line`).
    pub fn line(&self) -> usize {
        self.span.line as usize
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (micrometres).
    Number(f64),
    /// String literal (layer or net name).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<` (also opens optional parameters)
    Lt,
    /// `>` (also closes optional parameters)
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of a logical line.
    Newline,
    /// End of input.
    Eof,
}

/// Human-readable token text for error messages: punctuation prints as
/// `` `(` ``, payload tokens print their source text.
impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Number(n) => write!(f, "`{n}`"),
            TokenKind::Str(s) => write!(f, "`\"{s}\"`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::EqEq => f.write_str("`==`"),
            TokenKind::Ne => f.write_str("`!=`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::Newline => f.write_str("end of line"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column within the line.
    pub col: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a source string. `//` and `#` start comments; blank lines
/// collapse; every non-empty line ends in one `Newline` token.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut line_start = 0usize; // byte offset of the current line
    for (i, raw) in src.split('\n').enumerate() {
        let line = i + 1;
        let text = strip_comment(raw);
        let mut lx = LineLexer {
            text,
            line,
            line_start,
            pos: 0,
            out: &mut out,
        };
        lx.run()?;
        line_start += raw.len() + 1; // +1 for the '\n'
    }
    let end = src.len() as u32;
    let last_line = out.last().map(|t| t.span.line).unwrap_or(1);
    out.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(last_line, 1, end, end),
    });
    Ok(out)
}

/// Lexes one (comment-stripped) source line.
struct LineLexer<'a> {
    text: &'a str,
    line: usize,
    /// Byte offset of the line's first byte in the whole source.
    line_start: usize,
    /// Byte position within `text`.
    pos: usize,
    out: &'a mut Vec<Token>,
}

impl LineLexer<'_> {
    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// A span from byte `from` (within the line) to the current position.
    fn span_from(&self, from: usize) -> Span {
        Span::new(
            self.line as u32,
            from as u32 + 1,
            (self.line_start + from) as u32,
            (self.line_start + self.pos) as u32,
        )
    }

    fn push(&mut self, kind: TokenKind, from: usize) {
        let span = self.span_from(from);
        self.out.push(Token { kind, span });
    }

    fn err<T>(&self, from: usize, message: impl Into<String>) -> Result<T, LexError> {
        Err(LexError {
            line: self.line,
            col: from + 1,
            message: message.into(),
        })
    }

    fn run(&mut self) -> Result<(), LexError> {
        let emitted_before = self.out.len();
        while let Some(ch) = self.peek() {
            let from = self.pos;
            match ch {
                ' ' | '\t' | '\r' => {
                    self.bump();
                }
                '(' => self.single(TokenKind::LParen),
                ')' => self.single(TokenKind::RParen),
                ',' => self.single(TokenKind::Comma),
                '+' => self.single(TokenKind::Plus),
                '-' => self.single(TokenKind::Minus),
                '*' => self.single(TokenKind::Star),
                '/' => self.single(TokenKind::Slash),
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::EqEq, from);
                    } else {
                        self.push(TokenKind::Eq, from);
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::Ne, from);
                    } else {
                        return self.err(from, "stray `!`");
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::Le, from);
                    } else {
                        self.push(TokenKind::Lt, from);
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::Ge, from);
                    } else {
                        self.push(TokenKind::Gt, from);
                    }
                }
                '"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some('"') => break,
                            Some(c) => s.push(c),
                            None => return self.err(from, "unterminated string"),
                        }
                    }
                    self.push(TokenKind::Str(s), from);
                }
                c if c.is_ascii_digit() || c == '.' => {
                    let mut s = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_digit() || c == '.' {
                            s.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    match s.parse::<f64>() {
                        Ok(n) => self.push(TokenKind::Number(n), from),
                        Err(_) => return self.err(from, format!("bad number `{s}`")),
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            s.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Ident(s), from);
                }
                other => return self.err(from, format!("unexpected `{other}`")),
            }
        }
        if self.out.len() > emitted_before {
            let from = self.pos;
            self.push(TokenKind::Newline, from);
        }
        Ok(())
    }

    fn single(&mut self, kind: TokenKind) {
        let from = self.pos;
        self.bump();
        self.push(kind, from);
    }
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find("//").map(|i| i.min(line.len()));
    let cut2 = line.find('#');
    match (cut, cut2) {
        (Some(a), Some(b)) => &line[..a.min(b)],
        (Some(a), None) => &line[..a],
        (None, Some(b)) => &line[..b],
        (None, None) => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_paper_call_line() {
        let k = kinds(r#"gatecon = ContactRow(layer = "poly", W = 1)"#);
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("gatecon".into()),
                TokenKind::Eq,
                TokenKind::Ident("ContactRow".into()),
                TokenKind::LParen,
                TokenKind::Ident("layer".into()),
                TokenKind::Eq,
                TokenKind::Str("poly".into()),
                TokenKind::Comma,
                TokenKind::Ident("W".into()),
                TokenKind::Eq,
                TokenKind::Number(1.0),
                TokenKind::RParen,
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn optional_param_brackets() {
        let k = kinds("ENT Trans(<W>, <L>)");
        assert!(k.contains(&TokenKind::Lt));
        assert!(k.contains(&TokenKind::Gt));
    }

    #[test]
    fn comments_are_stripped() {
        let k = kinds("compact(a, WEST, \"pdiff\") // step 3");
        assert!(!k
            .iter()
            .any(|t| matches!(t, TokenKind::Ident(s) if s == "step")));
        let k = kinds("x = 1 # comment");
        assert_eq!(k.len(), 5);
    }

    #[test]
    fn comparison_operators() {
        let k = kinds("IF a <= b");
        assert!(k.contains(&TokenKind::Le));
        let k = kinds("IF a != b");
        assert!(k.contains(&TokenKind::Ne));
        let k = kinds("IF a == b");
        assert!(k.contains(&TokenKind::EqEq));
    }

    #[test]
    fn numbers_with_decimals() {
        let k = kinds("W = 2.5");
        assert!(k.contains(&TokenKind::Number(2.5)));
    }

    #[test]
    fn blank_lines_produce_no_newlines() {
        let k = kinds("a = 1\n\n\nb = 2");
        let newlines = k.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn unterminated_string_errors_with_line() {
        let e = lex("x = \"oops").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.col, 5);
    }

    #[test]
    fn stray_bang_errors() {
        assert!(lex("x ! y").is_err());
    }

    #[test]
    fn spans_carry_line_column_and_byte_range() {
        let src = "a = 1\nbb = \"poly\"";
        let toks = lex(src).unwrap();
        // `bb` on line 2, column 1, bytes 6..8.
        let bb = toks
            .iter()
            .find(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "bb"))
            .unwrap();
        assert_eq!((bb.span.line, bb.span.col), (2, 1));
        assert_eq!((bb.span.start, bb.span.end), (6, 8));
        assert_eq!(&src[bb.span.start as usize..bb.span.end as usize], "bb");
        // The string literal spans its quotes.
        let s = toks
            .iter()
            .find(|t| matches!(&t.kind, TokenKind::Str(_)))
            .unwrap();
        assert_eq!(&src[s.span.start as usize..s.span.end as usize], "\"poly\"");
        assert_eq!(s.span.col, 6);
    }

    #[test]
    fn error_columns_point_at_the_offender() {
        let e = lex("x = 1 $ 2").unwrap_err();
        assert_eq!((e.line, e.col), (1, 7));
    }

    #[test]
    fn token_kinds_render_human_text() {
        assert_eq!(TokenKind::Ident("foo".into()).to_string(), "`foo`");
        assert_eq!(TokenKind::Str("poly".into()).to_string(), "`\"poly\"`");
        assert_eq!(TokenKind::Newline.to_string(), "end of line");
        assert_eq!(TokenKind::Le.to_string(), "`<=`");
    }
}

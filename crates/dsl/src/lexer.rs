//! Tokenizer for the layout description language.

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (micrometres).
    Number(f64),
    /// String literal (layer or net name).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<` (also opens optional parameters)
    Lt,
    /// `>` (also closes optional parameters)
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of a logical line.
    Newline,
    /// End of input.
    Eof,
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// 1-based line.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a source string. `//` and `#` start comments; blank lines
/// collapse; every non-empty line ends in one `Newline` token.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let mut chars = strip_comment(raw).chars().peekable();
        let mut emitted = false;
        while let Some(&ch) = chars.peek() {
            match ch {
                ' ' | '\t' | '\r' => {
                    chars.next();
                }
                '(' => push(&mut out, TokenKind::LParen, line, &mut chars, &mut emitted),
                ')' => push(&mut out, TokenKind::RParen, line, &mut chars, &mut emitted),
                ',' => push(&mut out, TokenKind::Comma, line, &mut chars, &mut emitted),
                '+' => push(&mut out, TokenKind::Plus, line, &mut chars, &mut emitted),
                '-' => push(&mut out, TokenKind::Minus, line, &mut chars, &mut emitted),
                '*' => push(&mut out, TokenKind::Star, line, &mut chars, &mut emitted),
                '/' => push(&mut out, TokenKind::Slash, line, &mut chars, &mut emitted),
                '=' => {
                    chars.next();
                    if chars.peek() == Some(&'=') {
                        chars.next();
                        out.push(Token {
                            kind: TokenKind::EqEq,
                            line,
                        });
                    } else {
                        out.push(Token {
                            kind: TokenKind::Eq,
                            line,
                        });
                    }
                    emitted = true;
                }
                '!' => {
                    chars.next();
                    if chars.peek() == Some(&'=') {
                        chars.next();
                        out.push(Token {
                            kind: TokenKind::Ne,
                            line,
                        });
                        emitted = true;
                    } else {
                        return Err(LexError {
                            line,
                            message: "stray `!`".into(),
                        });
                    }
                }
                '<' => {
                    chars.next();
                    if chars.peek() == Some(&'=') {
                        chars.next();
                        out.push(Token {
                            kind: TokenKind::Le,
                            line,
                        });
                    } else {
                        out.push(Token {
                            kind: TokenKind::Lt,
                            line,
                        });
                    }
                    emitted = true;
                }
                '>' => {
                    chars.next();
                    if chars.peek() == Some(&'=') {
                        chars.next();
                        out.push(Token {
                            kind: TokenKind::Ge,
                            line,
                        });
                    } else {
                        out.push(Token {
                            kind: TokenKind::Gt,
                            line,
                        });
                    }
                    emitted = true;
                }
                '"' => {
                    chars.next();
                    let mut s = String::new();
                    loop {
                        match chars.next() {
                            Some('"') => break,
                            Some(c) => s.push(c),
                            None => {
                                return Err(LexError {
                                    line,
                                    message: "unterminated string".into(),
                                })
                            }
                        }
                    }
                    out.push(Token {
                        kind: TokenKind::Str(s),
                        line,
                    });
                    emitted = true;
                }
                c if c.is_ascii_digit() || c == '.' => {
                    let mut s = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_digit() || c == '.' {
                            s.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let n: f64 = s.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad number `{s}`"),
                    })?;
                    out.push(Token {
                        kind: TokenKind::Number(n),
                        line,
                    });
                    emitted = true;
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            s.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push(Token {
                        kind: TokenKind::Ident(s),
                        line,
                    });
                    emitted = true;
                }
                other => {
                    return Err(LexError {
                        line,
                        message: format!("unexpected `{other}`"),
                    })
                }
            }
        }
        if emitted {
            out.push(Token {
                kind: TokenKind::Newline,
                line,
            });
        }
    }
    let last = out.last().map(|t| t.line).unwrap_or(1);
    out.push(Token {
        kind: TokenKind::Eof,
        line: last,
    });
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find("//").map(|i| i.min(line.len()));
    let cut2 = line.find('#');
    match (cut, cut2) {
        (Some(a), Some(b)) => &line[..a.min(b)],
        (Some(a), None) => &line[..a],
        (None, Some(b)) => &line[..b],
        (None, None) => line,
    }
}

fn push(
    out: &mut Vec<Token>,
    kind: TokenKind,
    line: usize,
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    emitted: &mut bool,
) {
    chars.next();
    out.push(Token { kind, line });
    *emitted = true;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_paper_call_line() {
        let k = kinds(r#"gatecon = ContactRow(layer = "poly", W = 1)"#);
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("gatecon".into()),
                TokenKind::Eq,
                TokenKind::Ident("ContactRow".into()),
                TokenKind::LParen,
                TokenKind::Ident("layer".into()),
                TokenKind::Eq,
                TokenKind::Str("poly".into()),
                TokenKind::Comma,
                TokenKind::Ident("W".into()),
                TokenKind::Eq,
                TokenKind::Number(1.0),
                TokenKind::RParen,
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn optional_param_brackets() {
        let k = kinds("ENT Trans(<W>, <L>)");
        assert!(k.contains(&TokenKind::Lt));
        assert!(k.contains(&TokenKind::Gt));
    }

    #[test]
    fn comments_are_stripped() {
        let k = kinds("compact(a, WEST, \"pdiff\") // step 3");
        assert!(!k
            .iter()
            .any(|t| matches!(t, TokenKind::Ident(s) if s == "step")));
        let k = kinds("x = 1 # comment");
        assert_eq!(k.len(), 5);
    }

    #[test]
    fn comparison_operators() {
        let k = kinds("IF a <= b");
        assert!(k.contains(&TokenKind::Le));
        let k = kinds("IF a != b");
        assert!(k.contains(&TokenKind::Ne));
        let k = kinds("IF a == b");
        assert!(k.contains(&TokenKind::EqEq));
    }

    #[test]
    fn numbers_with_decimals() {
        let k = kinds("W = 2.5");
        assert!(k.contains(&TokenKind::Number(2.5)));
    }

    #[test]
    fn blank_lines_produce_no_newlines() {
        let k = kinds("a = 1\n\n\nb = 2");
        let newlines = k.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn unterminated_string_errors_with_line() {
        let e = lex("x = \"oops").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn stray_bang_errors() {
        assert!(lex("x ! y").is_err());
    }
}

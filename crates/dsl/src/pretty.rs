//! Pretty-printer for the layout description language.
//!
//! Turns an AST back into canonical source — used by tooling and by the
//! round-trip property tests that pin the parser (`parse ∘ print` is the
//! identity on printed form).

use crate::ast::{Call, Entity, Expr, Program, Stmt};

/// Prints a whole program (top-level statements, then entities).
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.top {
        print_stmt(s, 0, &mut out);
    }
    for e in &p.entities {
        out.push('\n');
        print_entity(e, &mut out);
    }
    out
}

/// Prints one entity declaration.
pub fn print_entity(e: &Entity, out: &mut String) {
    out.push_str("ENT ");
    out.push_str(&e.name);
    out.push('(');
    for (i, p) in e.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if p.optional {
            out.push('<');
            out.push_str(&p.name);
            out.push('>');
        } else {
            out.push_str(&p.name);
        }
    }
    out.push_str(")\n");
    for s in &e.body {
        print_stmt(s, 1, out);
    }
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Prints one statement at the given indentation level.
pub fn print_stmt(s: &Stmt, level: usize, out: &mut String) {
    match s {
        Stmt::Assign { name, value, .. } => {
            indent(level, out);
            out.push_str(name);
            out.push_str(" = ");
            print_expr(value, out);
            out.push('\n');
        }
        Stmt::Call(c) => {
            indent(level, out);
            print_call(c, out);
            out.push('\n');
        }
        Stmt::Compact {
            obj, dir, ignore, ..
        } => {
            indent(level, out);
            out.push_str("compact(");
            out.push_str(obj);
            out.push_str(", ");
            out.push_str(dir);
            for e in ignore {
                out.push_str(", ");
                print_expr(e, out);
            }
            out.push_str(")\n");
        }
        Stmt::For {
            var,
            from,
            to,
            body,
            ..
        } => {
            indent(level, out);
            out.push_str("FOR ");
            out.push_str(var);
            out.push_str(" = ");
            print_expr(from, out);
            out.push_str(" TO ");
            print_expr(to, out);
            out.push('\n');
            for s in body {
                print_stmt(s, level + 1, out);
            }
            indent(level, out);
            out.push_str("END\n");
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            indent(level, out);
            out.push_str("IF ");
            print_expr(cond, out);
            out.push('\n');
            for s in then_body {
                print_stmt(s, level + 1, out);
            }
            if !else_body.is_empty() {
                indent(level, out);
                out.push_str("ELSE\n");
                for s in else_body {
                    print_stmt(s, level + 1, out);
                }
            }
            indent(level, out);
            out.push_str("END\n");
        }
        Stmt::Variant { arms, .. } => {
            indent(level, out);
            out.push_str("VARIANT\n");
            for (i, arm) in arms.iter().enumerate() {
                if i > 0 {
                    indent(level, out);
                    out.push_str("OR\n");
                }
                for s in arm {
                    print_stmt(s, level + 1, out);
                }
            }
            indent(level, out);
            out.push_str("END\n");
        }
    }
}

fn print_call(c: &Call, out: &mut String) {
    out.push_str(&c.name);
    out.push('(');
    let mut first = true;
    for e in &c.positional {
        if !first {
            out.push_str(", ");
        }
        first = false;
        print_expr(e, out);
    }
    for (k, _, e) in &c.keyword {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(k);
        out.push_str(" = ");
        print_expr(e, out);
    }
    out.push(')');
}

/// Prints one expression (fully parenthesised where nesting requires it).
pub fn print_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Number(n, _) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Expr::Str(s, _) => {
            out.push('"');
            out.push_str(s);
            out.push('"');
        }
        // An interned layer prints as its source spelling, so a bound
        // program pretty-prints identically to its unbound form.
        Expr::Layer(_, name, _) => {
            out.push('"');
            out.push_str(name);
            out.push('"');
        }
        Expr::Var(v, _) => out.push_str(v),
        Expr::Call(c) => print_call(c, out),
        Expr::Neg(inner, _) => {
            out.push_str("-(");
            print_expr(inner, out);
            out.push(')');
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            out.push('(');
            print_expr(lhs, out);
            out.push(' ');
            out.push_str(&op.to_string());
            out.push(' ');
            print_expr(rhs, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn prints_fig2_canonically() {
        let src = crate::stdlib::FIG2_CONTACT_ROW;
        let prog = parse(src).unwrap();
        let printed = print_program(&prog);
        assert!(printed.contains("ENT ContactRow(layer, <W>, <L>)"));
        assert!(printed.contains("INBOX(layer, W, L)"));
        // Round trip: printing the reparsed output is a fixed point.
        let reparsed = parse(&printed).unwrap();
        assert_eq!(print_program(&reparsed), printed);
    }

    #[test]
    fn prints_every_stdlib_source_round_trip() {
        for src in [
            crate::stdlib::FIG2_CONTACT_ROW,
            crate::stdlib::FIG7_DIFF_PAIR,
            crate::stdlib::INTERDIGIT,
            crate::stdlib::VARIANT_ROW,
        ] {
            let prog = parse(src).unwrap();
            let printed = print_program(&prog);
            let reparsed = parse(&printed).unwrap();
            assert_eq!(print_program(&reparsed), printed);
        }
    }

    #[test]
    fn parenthesised_arithmetic_survives() {
        let prog = parse("x = (1 + 2) * 3\n").unwrap();
        let printed = print_program(&prog);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(print_program(&reparsed), printed);
        assert!(printed.contains("((1 + 2) * 3)"));
    }
}

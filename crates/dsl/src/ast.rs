//! Abstract syntax of the layout description language.
//!
//! Every node carries the [`Span`] of its source text; programs built in
//! code (tests, generators) use [`Span::NONE`]. Spans never influence
//! semantics — [`strip_spans`] erases them for structural comparison.

use crate::span::Span;

/// A complete source file: top-level statements plus entity declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Statements executed in the root context.
    pub top: Vec<Stmt>,
    /// Entity declarations, in source order.
    pub entities: Vec<Entity>,
}

/// An `ENT` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// Entity name (e.g. `ContactRow`).
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Span of the declaration's name.
    pub span: Span,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Name.
    pub name: String,
    /// True for `<param>` — omitted arguments default to unset, which the
    /// geometry functions interpret as the design-rule minimum.
    pub optional: bool,
    /// Span of the parameter name in the `ENT` header.
    pub span: Span,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = expr`
    Assign {
        /// Target variable.
        name: String,
        /// Value.
        value: Expr,
        /// Span of the target name.
        span: Span,
    },
    /// A bare call (`INBOX(...)`, `ARRAY(...)`, ...).
    Call(Call),
    /// `compact(obj, DIR, "layer", ...)`
    Compact {
        /// Variable holding the object to compact.
        obj: String,
        /// Attachment side (NORTH/SOUTH/EAST/WEST).
        dir: String,
        /// Irrelevant layers for this step.
        ignore: Vec<Expr>,
        /// Span of the `compact` keyword.
        span: Span,
        /// Span of the direction identifier.
        dir_span: Span,
    },
    /// `FOR v = a TO b ... END`
    For {
        /// Loop variable.
        var: String,
        /// Start value (inclusive).
        from: Expr,
        /// End value (inclusive).
        to: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Span of the `FOR` keyword.
        span: Span,
    },
    /// `IF cond ... [ELSE ...] END`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
        /// Span of the `IF` keyword.
        span: Span,
    },
    /// `VARIANT ... OR ... END` — topology alternatives (backtracking).
    Variant {
        /// The alternative bodies.
        arms: Vec<Vec<Stmt>>,
        /// Span of the `VARIANT` keyword.
        span: Span,
    },
}

impl Stmt {
    /// The statement's anchor span (its keyword or target name).
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::Compact { span, .. }
            | Stmt::For { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Variant { span, .. } => *span,
            Stmt::Call(c) => c.span,
        }
    }

    /// 1-based source line of the statement (0 when synthesized).
    pub fn line(&self) -> usize {
        self.span().line as usize
    }

    /// Short static name of the statement kind (fault-injection detail,
    /// diagnostics).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Stmt::Assign { .. } => "assign",
            Stmt::Call(_) => "call",
            Stmt::Compact { .. } => "compact",
            Stmt::For { .. } => "for",
            Stmt::If { .. } => "if",
            Stmt::Variant { .. } => "variant",
        }
    }
}

/// A call with positional and keyword arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Call {
    /// Callee name.
    pub name: String,
    /// Positional arguments.
    pub positional: Vec<Expr>,
    /// Keyword arguments; the span locates the keyword name.
    pub keyword: Vec<(String, Span, Expr)>,
    /// Span of the callee name.
    pub span: Span,
}

impl Call {
    /// 1-based source line of the callee (0 when synthesized).
    pub fn line(&self) -> usize {
        self.span.line as usize
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal (micrometres).
    Number(f64, Span),
    /// String literal.
    Str(String, Span),
    /// A string literal resolved to a layer handle at bind time. The
    /// parser never produces this variant; the interpreter's bind pass
    /// rewrites [`Expr::Str`] into it when the string names a layer of
    /// the bound technology, so execution needs no name lookup. The
    /// original spelling is kept for printing and for contexts that
    /// still want the string (net names shadowed by layer names).
    Layer(amgen_tech::Layer, String, Span),
    /// Variable reference.
    Var(String, Span),
    /// Call producing a value (entity instantiation).
    Call(Call),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Span covering both operands.
        span: Span,
    },
    /// Unary negation.
    Neg(Box<Expr>, Span),
}

impl Expr {
    /// The expression's source span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Number(_, span)
            | Expr::Str(_, span)
            | Expr::Layer(_, _, span)
            | Expr::Var(_, span)
            | Expr::Neg(_, span)
            | Expr::Binary { span, .. } => *span,
            Expr::Call(c) => c.span,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

// ----- span erasure -----------------------------------------------------

/// Resets every span in the program to [`Span::NONE`] — used to compare
/// programs structurally (e.g. parse ∘ print round trips, where the
/// re-parsed AST has different positions but identical structure).
pub fn strip_spans(p: &mut Program) {
    for s in &mut p.top {
        strip_stmt(s);
    }
    for e in &mut p.entities {
        e.span = Span::NONE;
        for par in &mut e.params {
            par.span = Span::NONE;
        }
        for s in &mut e.body {
            strip_stmt(s);
        }
    }
}

fn strip_stmt(s: &mut Stmt) {
    match s {
        Stmt::Assign { value, span, .. } => {
            *span = Span::NONE;
            strip_expr(value);
        }
        Stmt::Call(c) => strip_call(c),
        Stmt::Compact {
            ignore,
            span,
            dir_span,
            ..
        } => {
            *span = Span::NONE;
            *dir_span = Span::NONE;
            for e in ignore {
                strip_expr(e);
            }
        }
        Stmt::For {
            from,
            to,
            body,
            span,
            ..
        } => {
            *span = Span::NONE;
            strip_expr(from);
            strip_expr(to);
            for s in body {
                strip_stmt(s);
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            span,
        } => {
            *span = Span::NONE;
            strip_expr(cond);
            for s in then_body.iter_mut().chain(else_body) {
                strip_stmt(s);
            }
        }
        Stmt::Variant { arms, span } => {
            *span = Span::NONE;
            for arm in arms {
                for s in arm {
                    strip_stmt(s);
                }
            }
        }
    }
}

fn strip_call(c: &mut Call) {
    c.span = Span::NONE;
    for e in &mut c.positional {
        strip_expr(e);
    }
    for (_, kspan, e) in &mut c.keyword {
        *kspan = Span::NONE;
        strip_expr(e);
    }
}

fn strip_expr(e: &mut Expr) {
    match e {
        Expr::Number(_, span)
        | Expr::Str(_, span)
        | Expr::Layer(_, _, span)
        | Expr::Var(_, span) => *span = Span::NONE,
        Expr::Call(c) => strip_call(c),
        Expr::Binary { lhs, rhs, span, .. } => {
            *span = Span::NONE;
            strip_expr(lhs);
            strip_expr(rhs);
        }
        Expr::Neg(inner, span) => {
            *span = Span::NONE;
            strip_expr(inner);
        }
    }
}

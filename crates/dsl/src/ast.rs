//! Abstract syntax of the layout description language.

/// A complete source file: top-level statements plus entity declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Statements executed in the root context.
    pub top: Vec<Stmt>,
    /// Entity declarations, in source order.
    pub entities: Vec<Entity>,
}

/// An `ENT` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// Entity name (e.g. `ContactRow`).
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the declaration.
    pub line: usize,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Name.
    pub name: String,
    /// True for `<param>` — omitted arguments default to unset, which the
    /// geometry functions interpret as the design-rule minimum.
    pub optional: bool,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = expr`
    Assign {
        /// Target variable.
        name: String,
        /// Value.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// A bare call (`INBOX(...)`, `ARRAY(...)`, ...).
    Call(Call),
    /// `compact(obj, DIR, "layer", ...)`
    Compact {
        /// Variable holding the object to compact.
        obj: String,
        /// Attachment side (NORTH/SOUTH/EAST/WEST).
        dir: String,
        /// Irrelevant layers for this step.
        ignore: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// `FOR v = a TO b ... END`
    For {
        /// Loop variable.
        var: String,
        /// Start value (inclusive).
        from: Expr,
        /// End value (inclusive).
        to: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `IF cond ... [ELSE ...] END`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `VARIANT ... OR ... END` — topology alternatives (backtracking).
    Variant {
        /// The alternative bodies.
        arms: Vec<Vec<Stmt>>,
        /// Source line.
        line: usize,
    },
}

/// A call with positional and keyword arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Call {
    /// Callee name.
    pub name: String,
    /// Positional arguments.
    pub positional: Vec<Expr>,
    /// Keyword arguments.
    pub keyword: Vec<(String, Expr)>,
    /// Source line.
    pub line: usize,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal (micrometres).
    Number(f64),
    /// String literal.
    Str(String),
    /// A string literal resolved to a layer handle at bind time. The
    /// parser never produces this variant; the interpreter's bind pass
    /// rewrites [`Expr::Str`] into it when the string names a layer of
    /// the bound technology, so execution needs no name lookup. The
    /// original spelling is kept for printing and for contexts that
    /// still want the string (net names shadowed by layer names).
    Layer(amgen_tech::Layer, String),
    /// Variable reference.
    Var(String),
    /// Call producing a value (entity instantiation).
    Call(Call),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

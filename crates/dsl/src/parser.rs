//! Recursive-descent parser for the layout description language.

use crate::ast::{BinOp, Call, Entity, Expr, Param, Program, Stmt};
use crate::lexer::{lex, LexError, Token, TokenKind};
use crate::span::Span;

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based byte column within the line.
    pub col: usize,
    /// Span of the offending token (or error position).
    pub span: Span,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        let span = Span::new(e.line as u32, e.col as u32, 0, 0);
        ParseError {
            line: e.line,
            col: e.col,
            span,
            message: e.message,
        }
    }
}

/// Parses a complete program.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn next(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let span = self.span();
        Err(ParseError {
            line: span.line as usize,
            col: span.col as usize,
            span,
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {}", self.peek()))
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.next();
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        self.skip_newlines();
        while !matches!(self.peek(), TokenKind::Eof) {
            if self.at_keyword("ENT") {
                prog.entities.push(self.entity()?);
            } else {
                prog.top.push(self.statement()?);
            }
            self.skip_newlines();
        }
        Ok(prog)
    }

    fn entity(&mut self) -> Result<Entity, ParseError> {
        self.next(); // ENT
        let span = self.span();
        let name = self.ident("entity name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                let pspan = self.span();
                match self.next() {
                    TokenKind::Ident(n) => params.push(Param {
                        name: n,
                        optional: false,
                        span: pspan,
                    }),
                    TokenKind::Lt => {
                        let pspan = self.span();
                        let n = self.ident("parameter name")?;
                        self.expect(&TokenKind::Gt, "`>`")?;
                        params.push(Param {
                            name: n,
                            optional: true,
                            span: pspan,
                        });
                    }
                    other => return self.err(format!("expected parameter, found {other}")),
                }
                if matches!(self.peek(), TokenKind::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect(&TokenKind::Newline, "end of line")?;
        // Body runs until the next ENT or EOF.
        let mut body = Vec::new();
        self.skip_newlines();
        while !matches!(self.peek(), TokenKind::Eof) && !self.at_keyword("ENT") {
            body.push(self.statement()?);
            self.skip_newlines();
        }
        Ok(Entity {
            name,
            params,
            body,
            span,
        })
    }

    fn block(&mut self, terminators: &[&str]) -> Result<(Vec<Stmt>, String), ParseError> {
        let mut body = Vec::new();
        self.skip_newlines();
        loop {
            if matches!(self.peek(), TokenKind::Eof) {
                return self.err(format!("missing {terminators:?}"));
            }
            for t in terminators {
                if self.at_keyword(t) {
                    let kw = (*t).to_string();
                    self.next();
                    // END/ELSE/OR may be followed by a newline.
                    if matches!(self.peek(), TokenKind::Newline) {
                        self.next();
                    }
                    return Ok((body, kw));
                }
            }
            body.push(self.statement()?);
            self.skip_newlines();
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        if self.at_keyword("FOR") {
            self.next();
            let var = self.ident("loop variable")?;
            self.expect(&TokenKind::Eq, "`=`")?;
            let from = self.expr()?;
            if !self.at_keyword("TO") {
                return self.err(format!("expected `TO`, found {}", self.peek()));
            }
            self.next();
            let to = self.expr()?;
            self.expect(&TokenKind::Newline, "end of line")?;
            let (body, _) = self.block(&["END"])?;
            return Ok(Stmt::For {
                var,
                from,
                to,
                body,
                span,
            });
        }
        if self.at_keyword("IF") {
            self.next();
            let cond = self.expr()?;
            self.expect(&TokenKind::Newline, "end of line")?;
            let (then_body, kw) = self.block(&["ELSE", "END"])?;
            let else_body = if kw == "ELSE" {
                let (e, _) = self.block(&["END"])?;
                e
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            });
        }
        if self.at_keyword("VARIANT") {
            self.next();
            if matches!(self.peek(), TokenKind::Newline) {
                self.next();
            }
            let mut arms = Vec::new();
            loop {
                let (arm, kw) = self.block(&["OR", "END"])?;
                arms.push(arm);
                if kw == "END" {
                    break;
                }
            }
            return Ok(Stmt::Variant { arms, span });
        }
        if self.at_keyword("compact") {
            self.next();
            self.expect(&TokenKind::LParen, "`(`")?;
            let obj = self.ident("object name")?;
            self.expect(&TokenKind::Comma, "`,`")?;
            let dir_span = self.span();
            let dir = self.ident("direction")?;
            let mut ignore = Vec::new();
            while matches!(self.peek(), TokenKind::Comma) {
                self.next();
                ignore.push(self.expr()?);
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            self.expect(&TokenKind::Newline, "end of line")?;
            return Ok(Stmt::Compact {
                obj,
                dir,
                ignore,
                span,
                dir_span,
            });
        }
        // Assignment or bare call.
        let name = self.ident("statement")?;
        match self.peek() {
            TokenKind::Eq => {
                self.next();
                let value = self.expr()?;
                self.expect(&TokenKind::Newline, "end of line")?;
                Ok(Stmt::Assign { name, value, span })
            }
            TokenKind::LParen => {
                let call = self.call_args(name, span)?;
                self.expect(&TokenKind::Newline, "end of line")?;
                Ok(Stmt::Call(call))
            }
            other => self.err(format!("expected `=` or `(` after `{name}`, found {other}")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            TokenKind::Ident(s) => Ok(s),
            other => self.err(format!("expected {what}, found {other}")),
        }
    }

    fn call_args(&mut self, name: String, span: Span) -> Result<Call, ParseError> {
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut positional = Vec::new();
        let mut keyword = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                // Keyword argument: IDENT '=' expr (but not '==').
                let is_kw = matches!(self.peek(), TokenKind::Ident(_))
                    && matches!(self.tokens[self.pos + 1].kind, TokenKind::Eq);
                if is_kw {
                    let kspan = self.span();
                    let k = self.ident("argument name")?;
                    self.next(); // '='
                    let v = self.expr()?;
                    keyword.push((k, kspan, v));
                } else {
                    positional.push(self.expr()?);
                }
                if matches!(self.peek(), TokenKind::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(Call {
            name,
            positional,
            keyword,
            span,
        })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.additive()?;
        let span = lhs.span().join(rhs.span());
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.multiplicative()?;
            let span = lhs.span().join(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.unary()?;
            let span = lhs.span().join(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), TokenKind::Minus) {
            let span = self.span();
            self.next();
            let inner = self.unary()?;
            let span = span.join(inner.span());
            return Ok(Expr::Neg(Box::new(inner), span));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        match self.next() {
            TokenKind::Number(n) => Ok(Expr::Number(n, span)),
            TokenKind::Str(s) => Ok(Expr::Str(s, span)),
            TokenKind::Ident(name) => {
                if matches!(self.peek(), TokenKind::LParen) {
                    Ok(Expr::Call(self.call_args(name, span)?))
                } else {
                    Ok(Expr::Var(name, span))
                }
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(ParseError {
                line: span.line as usize,
                col: span.col as usize,
                span,
                message: format!("expected expression, found {other}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2: &str = r#"
gatecon = ContactRow(layer = "poly", W = 1)

ENT ContactRow(layer, <W>, <L>)
  INBOX(layer, W, L)
  INBOX("metal1")
  ARRAY("contact")
"#;

    #[test]
    fn parses_fig2() {
        let p = parse(FIG2).unwrap();
        assert_eq!(p.top.len(), 1);
        assert_eq!(p.entities.len(), 1);
        let e = &p.entities[0];
        assert_eq!(e.name, "ContactRow");
        assert_eq!(e.params.len(), 3);
        assert!(!e.params[0].optional);
        assert!(e.params[1].optional && e.params[2].optional);
        assert_eq!(e.body.len(), 3);
    }

    const FIG7: &str = r#"
diff = DiffPair(W = 10, L = 5)

ENT Trans(<W>, <L>)
  TWORECTS("poly", "pdiff", W, L)
  polycon = ContactRow(layer = "poly", L = L)
  diffcon = ContactRow(layer = "pdiff", W = W)
  compact(polycon, SOUTH, "poly")   // step 1
  compact(diffcon, SOUTH, "pdiff")  // step 2

ENT DiffPair(<W>, <L>)
  trans1 = Trans(W = W, L = L)
  trans2 = trans1 // copy of trans1
  diffcon = ContactRow(layer = "pdiff", W = W)
  compact(trans1, WEST, "pdiff")  // step 3
  compact(trans2, WEST, "pdiff")  // step 4
  compact(diffcon, WEST, "pdiff") // step 5
"#;

    #[test]
    fn parses_fig7() {
        let p = parse(FIG7).unwrap();
        assert_eq!(p.entities.len(), 2);
        let trans = &p.entities[0];
        assert_eq!(trans.body.len(), 5);
        assert!(
            matches!(&trans.body[3], Stmt::Compact { obj, dir, ignore, .. }
            if obj == "polycon" && dir == "SOUTH" && ignore.len() == 1)
        );
        let pair = &p.entities[1];
        // `trans2 = trans1` is a plain variable assignment (object copy).
        assert!(
            matches!(&pair.body[1], Stmt::Assign { name, value: Expr::Var(v, _), .. }
            if name == "trans2" && v == "trans1")
        );
    }

    #[test]
    fn parses_for_loop() {
        let src = "ENT A(<n>)\nFOR i = 1 TO n\n  INBOX(\"poly\")\nEND\n";
        let p = parse(src).unwrap();
        assert!(matches!(&p.entities[0].body[0], Stmt::For { var, .. } if var == "i"));
    }

    #[test]
    fn parses_if_else() {
        let src = "ENT A(w)\nIF w > 5\n  INBOX(\"poly\", w)\nELSE\n  INBOX(\"poly\")\nEND\n";
        let p = parse(src).unwrap();
        let Stmt::If {
            then_body,
            else_body,
            ..
        } = &p.entities[0].body[0]
        else {
            panic!("expected IF");
        };
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn parses_variant_arms() {
        let src = "ENT A()\nVARIANT\n  INBOX(\"poly\")\nOR\n  INBOX(\"metal1\")\nOR\n  INBOX(\"pdiff\")\nEND\n";
        let p = parse(src).unwrap();
        let Stmt::Variant { arms, .. } = &p.entities[0].body[0] else {
            panic!("expected VARIANT");
        };
        assert_eq!(arms.len(), 3);
    }

    #[test]
    fn arithmetic_precedence() {
        let p = parse("x = 1 + 2 * 3\n").unwrap();
        let Stmt::Assign { value, .. } = &p.top[0] else {
            panic!()
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = value
        else {
            panic!("+ at the top: {value:?}");
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn missing_end_is_an_error() {
        let e = parse("ENT A()\nFOR i = 1 TO 3\n  INBOX(\"poly\")\n").unwrap_err();
        assert!(e.message.contains("END"));
    }

    #[test]
    fn keyword_vs_comparison_in_args() {
        // `W = 1` inside parens is a keyword argument, `W == 1` would be
        // a comparison expression.
        let p = parse("a = F(W = 1)\n").unwrap();
        let Stmt::Assign {
            value: Expr::Call(c),
            ..
        } = &p.top[0]
        else {
            panic!()
        };
        assert_eq!(c.keyword.len(), 1);
        assert!(c.positional.is_empty());
    }

    #[test]
    fn negative_numbers() {
        let p = parse("x = -2\n").unwrap();
        let Stmt::Assign { value, .. } = &p.top[0] else {
            panic!()
        };
        assert!(matches!(value, Expr::Neg(..)));
    }

    #[test]
    fn error_reports_line_and_column() {
        let e = parse("a = 1\nb = = 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.col, 5);
    }

    #[test]
    fn errors_name_the_offending_token() {
        let e = parse("a = 1\nb = = 2\n").unwrap_err();
        assert!(e.message.contains("`=`"), "{}", e.message);
        let e = parse("compact(a b)\n").unwrap_err();
        assert!(e.message.contains("`b`"), "{}", e.message);
    }

    #[test]
    fn ast_spans_point_into_the_source() {
        let src = "x = ContactRow(layer = \"poly\")\n";
        let p = parse(src).unwrap();
        let Stmt::Assign { value, span, .. } = &p.top[0] else {
            panic!()
        };
        assert_eq!(&src[span.start as usize..span.end as usize], "x");
        let Expr::Call(c) = value else { panic!() };
        assert_eq!(
            &src[c.span.start as usize..c.span.end as usize],
            "ContactRow"
        );
        let (k, kspan, v) = &c.keyword[0];
        assert_eq!(k, "layer");
        assert_eq!(&src[kspan.start as usize..kspan.end as usize], "layer");
        assert_eq!(
            &src[v.span().start as usize..v.span().end as usize],
            "\"poly\""
        );
    }

    #[test]
    fn binary_spans_cover_both_operands() {
        let src = "x = 1 + 2 * 3\n";
        let p = parse(src).unwrap();
        let Stmt::Assign { value, .. } = &p.top[0] else {
            panic!()
        };
        let s = value.span();
        assert_eq!(&src[s.start as usize..s.end as usize], "1 + 2 * 3");
    }
}

//! Fuel-budget properties of the interpreter: any generator program run
//! under a finite fuel budget terminates — with its objects or with a
//! typed budget error — never by panicking or hanging. This includes
//! unbounded `FOR` ranges and (mutually) recursive entity calls.

use amgen_core::{Budget, GenErrorKind, IntoGenCtx, Resource};
use amgen_dsl::ast::{strip_spans, Program};
use amgen_dsl::pretty::print_program;
use amgen_dsl::{DslError, Interpreter};
use amgen_tech::Tech;
use proptest::prelude::*;

/// Runs `src` under a fuel budget and bounded recursion, returning the
/// fuel actually consumed alongside the outcome.
fn run_with_fuel(src: &str, fuel: u64) -> (u64, Result<(), DslError>) {
    let tech = Tech::bicmos_1u();
    let ctx = (&tech).into_gen_ctx().with_budget(
        Budget::unlimited()
            .with_dsl_fuel(fuel)
            .with_max_recursion(32),
    );
    let mut interp = Interpreter::new(ctx.clone());
    let outcome = interp.run(src).map(|_| ());
    (ctx.limits.fuel_used(), outcome)
}

/// `true` when the error is the typed budget signal (fuel or recursion).
fn is_budget(e: &DslError) -> bool {
    matches!(e, DslError::Gen(g) if g.is_budget_exhausted())
}

// The same program-shape strategies as `props.rs`, re-declared here
// because integration tests cannot share modules. Kept small: the fuel
// property only needs structurally diverse programs, not deep ones.
mod gen {
    use amgen_dsl::ast::{BinOp, Call, Entity, Expr, Param, Program, Stmt};
    use amgen_dsl::span::Span;
    use proptest::prelude::*;

    fn ident() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| s)
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (0i64..1000).prop_map(|n| Expr::Number(n as f64, Span::NONE)),
            "[a-z]{1,8}".prop_map(|s| Expr::Str(s, Span::NONE)),
            ident().prop_map(|v| Expr::Var(v, Span::NONE)),
        ];
        leaf.prop_recursive(2, 8, 2, |inner| {
            (
                inner.clone(),
                inner,
                prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul)],
            )
                .prop_map(|(a, b, op)| Expr::Binary {
                    op,
                    lhs: Box::new(a),
                    rhs: Box::new(b),
                    span: Span::NONE,
                })
        })
    }

    fn arb_stmt() -> impl Strategy<Value = Stmt> {
        let leaf = prop_oneof![
            (ident(), arb_expr()).prop_map(|(name, value)| Stmt::Assign {
                name,
                value,
                span: Span::NONE,
            }),
            (ident(), prop::collection::vec(arb_expr(), 0..2)).prop_map(|(name, positional)| {
                Stmt::Call(Call {
                    name: format!("E{name}"),
                    positional,
                    keyword: vec![],
                    span: Span::NONE,
                })
            }),
        ];
        leaf.prop_recursive(2, 6, 2, |inner| {
            prop_oneof![
                (
                    ident(),
                    arb_expr(),
                    arb_expr(),
                    prop::collection::vec(inner.clone(), 1..3)
                )
                    .prop_map(|(var, from, to, body)| Stmt::For {
                        var,
                        from,
                        to,
                        body,
                        span: Span::NONE,
                    }),
                (
                    arb_expr(),
                    prop::collection::vec(inner.clone(), 1..2),
                    prop::collection::vec(inner, 0..2)
                )
                    .prop_map(|(cond, then_body, else_body)| Stmt::If {
                        cond,
                        then_body,
                        else_body,
                        span: Span::NONE,
                    }),
            ]
        })
    }

    /// Programs whose entities may call each other (including cycles):
    /// every `E`-prefixed call resolves to one of the generated entities,
    /// so recursion genuinely happens instead of failing name lookup.
    pub fn arb_program() -> impl Strategy<Value = Program> {
        (
            prop::collection::vec(arb_stmt(), 0..4),
            prop::collection::vec((ident(), prop::collection::vec(arb_stmt(), 1..4)), 1..3),
        )
            .prop_map(|(top, ents)| {
                let names: Vec<String> = ents.iter().map(|(n, _)| format!("E{n}")).collect();
                let mut program = Program {
                    top,
                    entities: ents
                        .into_iter()
                        .map(|(name, body)| Entity {
                            name: format!("E{name}"),
                            params: vec![Param {
                                name: "n".into(),
                                optional: true,
                                span: Span::NONE,
                            }],
                            body,
                            span: Span::NONE,
                        })
                        .collect(),
                };
                // Retarget every entity-looking call at a real entity so
                // the interpreter actually descends instead of erroring.
                fn retarget(stmts: &mut [Stmt], names: &[String]) {
                    for s in stmts {
                        match s {
                            Stmt::Call(c) => {
                                let i = c.name.len() % names.len();
                                c.name = names[i].clone();
                            }
                            Stmt::For { body, .. } => retarget(body, names),
                            Stmt::If {
                                then_body,
                                else_body,
                                ..
                            } => {
                                retarget(then_body, names);
                                retarget(else_body, names);
                            }
                            _ => {}
                        }
                    }
                }
                retarget(&mut program.top, &names);
                let entities = std::mem::take(&mut program.entities);
                program.entities = entities
                    .into_iter()
                    .map(|mut e| {
                        retarget(&mut e.body, &names);
                        e
                    })
                    .collect();
                program
            })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary programs — including ones whose entities call each other
    /// in cycles — are total under finite fuel: the run returns Ok or an
    /// error, robustness errors are typed, and consumption never exceeds
    /// the budget by more than the final charge.
    #[test]
    fn arbitrary_programs_are_total_under_fuel(
        prog in gen::arb_program(),
        fuel in 1u32..3_000,
    ) {
        let mut prog: Program = prog;
        strip_spans(&mut prog);
        let src = print_program(&prog);
        let fuel = u64::from(fuel);
        let (used, outcome) = run_with_fuel(&src, fuel);
        if let Err(DslError::Gen(g)) = &outcome {
            prop_assert!(
                g.is_budget_exhausted() || g.is_cancelled(),
                "typed error must be a budget signal, got: {}", g
            );
        }
        prop_assert!(used <= fuel.saturating_add(1), "fuel overshoot: {} > {}", used, fuel);
    }

    /// A loop far larger than the budget exhausts fuel with the typed
    /// error instead of running to completion or hanging.
    #[test]
    fn huge_loops_exhaust_fuel(
        n in 100_000i64..5_000_000,
        fuel in 10u32..2_000,
    ) {
        let src = format!("FOR i = 1 TO {n}\n  x = i\nEND\n");
        let fuel = u64::from(fuel);
        let (used, outcome) = run_with_fuel(&src, fuel);
        let err = outcome.expect_err("loop body alone outweighs the budget");
        prop_assert!(is_budget(&err), "expected budget exhaustion, got: {}", err);
        match &err {
            DslError::Gen(g) => prop_assert!(matches!(
                g.kind,
                GenErrorKind::BudgetExhausted(Resource::DslFuel)
            )),
            other => prop_assert!(false, "unexpected error shape: {}", other),
        }
        prop_assert!(used <= fuel + 1);
    }

    /// Self-recursive and mutually recursive entities terminate with a
    /// typed budget error (fuel or recursion depth), never a stack
    /// overflow.
    #[test]
    fn unbounded_recursion_is_cut_off(fuel in 50u32..5_000, mutual in any::<bool>()) {
        let src = if mutual {
            "x = EPing(1)\n\nENT EPing(<n>)\n  a = EPong(n + 1)\n\nENT EPong(<n>)\n  b = EPing(n + 1)\n"
        } else {
            "x = ERec(1)\n\nENT ERec(<n>)\n  y = ERec(n + 1)\n"
        };
        let (_, outcome) = run_with_fuel(src, u64::from(fuel));
        let err = outcome.expect_err("unbounded recursion cannot succeed");
        prop_assert!(is_budget(&err), "expected a typed budget error, got: {}", err);
    }
}

//! Cache-transparency property: for arbitrary generated programs (with
//! entity calls retargeted so they genuinely descend), running with a
//! generation cache — cold or warm — must be observationally identical
//! to running without one. Caching may only save work (fuel, wall
//! time), never change a result.

use std::collections::BTreeMap;
use std::sync::Arc;

use amgen_core::{Budget, GenCtx};
use amgen_db::LayoutObject;
use amgen_dsl::ast::{strip_spans, Program};
use amgen_dsl::pretty::print_program;
use amgen_dsl::{DslError, Interpreter};
use amgen_tech::Tech;
use proptest::prelude::*;

fn render(map: &BTreeMap<String, LayoutObject>) -> String {
    format!("{map:#?}")
}

/// `true` when the error is a typed robustness signal (budget or
/// cancellation) rather than an ordinary language error.
fn is_budget(e: &DslError) -> bool {
    matches!(e, DslError::Gen(g) if g.is_budget_exhausted() || g.is_cancelled())
}

// The same program-shape strategies as `fuel_props.rs`, re-declared
// because integration tests cannot share modules.
mod gen {
    use amgen_dsl::ast::{BinOp, Call, Entity, Expr, Param, Program, Stmt};
    use amgen_dsl::span::Span;
    use proptest::prelude::*;

    fn ident() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| s)
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (0i64..1000).prop_map(|n| Expr::Number(n as f64, Span::NONE)),
            "[a-z]{1,8}".prop_map(|s| Expr::Str(s, Span::NONE)),
            ident().prop_map(|v| Expr::Var(v, Span::NONE)),
        ];
        leaf.prop_recursive(2, 8, 2, |inner| {
            (
                inner.clone(),
                inner,
                prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul)],
            )
                .prop_map(|(a, b, op)| Expr::Binary {
                    op,
                    lhs: Box::new(a),
                    rhs: Box::new(b),
                    span: Span::NONE,
                })
        })
    }

    fn arb_stmt() -> impl Strategy<Value = Stmt> {
        let leaf = prop_oneof![
            (ident(), arb_expr()).prop_map(|(name, value)| Stmt::Assign {
                name,
                value,
                span: Span::NONE,
            }),
            (ident(), prop::collection::vec(arb_expr(), 0..2)).prop_map(|(name, positional)| {
                Stmt::Call(Call {
                    name: format!("E{name}"),
                    positional,
                    keyword: vec![],
                    span: Span::NONE,
                })
            }),
        ];
        leaf.prop_recursive(2, 6, 2, |inner| {
            prop_oneof![
                (
                    ident(),
                    arb_expr(),
                    arb_expr(),
                    prop::collection::vec(inner.clone(), 1..3)
                )
                    .prop_map(|(var, from, to, body)| Stmt::For {
                        var,
                        from,
                        to,
                        body,
                        span: Span::NONE,
                    }),
                (
                    arb_expr(),
                    prop::collection::vec(inner.clone(), 1..2),
                    prop::collection::vec(inner, 0..2)
                )
                    .prop_map(|(cond, then_body, else_body)| Stmt::If {
                        cond,
                        then_body,
                        else_body,
                        span: Span::NONE,
                    }),
            ]
        })
    }

    /// Programs whose entities may call each other (including cycles):
    /// every `E`-prefixed call resolves to one of the generated entities,
    /// so entity calls — the cached operation — genuinely happen.
    pub fn arb_program() -> impl Strategy<Value = Program> {
        (
            prop::collection::vec(arb_stmt(), 0..4),
            prop::collection::vec((ident(), prop::collection::vec(arb_stmt(), 1..4)), 1..3),
        )
            .prop_map(|(top, ents)| {
                let names: Vec<String> = ents.iter().map(|(n, _)| format!("E{n}")).collect();
                let mut program = Program {
                    top,
                    entities: ents
                        .into_iter()
                        .map(|(name, body)| Entity {
                            name: format!("E{name}"),
                            params: vec![Param {
                                name: "n".into(),
                                optional: true,
                                span: Span::NONE,
                            }],
                            body,
                            span: Span::NONE,
                        })
                        .collect(),
                };
                fn retarget(stmts: &mut [Stmt], names: &[String]) {
                    for s in stmts {
                        match s {
                            Stmt::Call(c) => {
                                let i = c.name.len() % names.len();
                                c.name = names[i].clone();
                            }
                            Stmt::For { body, .. } => retarget(body, names),
                            Stmt::If {
                                then_body,
                                else_body,
                                ..
                            } => {
                                retarget(then_body, names);
                                retarget(else_body, names);
                            }
                            _ => {}
                        }
                    }
                }
                retarget(&mut program.top, &names);
                let entities = std::mem::take(&mut program.entities);
                program.entities = entities
                    .into_iter()
                    .map(|mut e| {
                        retarget(&mut e.body, &names);
                        e
                    })
                    .collect();
                program
            })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// When the uncached run succeeds, a cold-cache run and a warm-cache
    /// rerun of the same program must render byte-identically — caching
    /// only removes work (so the same finite fuel budget still
    /// suffices), never changes an answer. When the uncached run fails,
    /// every failure stays typed.
    #[test]
    fn caching_is_transparent_for_arbitrary_programs(prog in gen::arb_program()) {
        let mut prog: Program = prog;
        strip_spans(&mut prog);
        let src = print_program(&prog);
        // One compiled ruleset for all three runs: layer handles carry a
        // per-compile brand, and the comparison is per technology.
        let rules = Tech::bicmos_1u().compile_arc();
        let budget = || Budget::unlimited().with_dsl_fuel(4_000).with_max_recursion(16);

        let mut plain = Interpreter::new(GenCtx::new(Arc::clone(&rules)).with_budget(budget()));
        let uncached = plain.run(&src);

        let ctx = GenCtx::new(Arc::clone(&rules))
            .with_default_cache()
            .with_budget(budget());
        let mut caching = Interpreter::new(ctx);
        let cold = caching.run(&src);
        let warm = caching.run(&src);

        match uncached {
            Ok(map) => {
                // Hits skip entity bodies, so a cached run can only use
                // *less* fuel: success without a cache implies success
                // with one, cold and warm.
                let cold = cold.unwrap_or_else(|e| {
                    panic!("uncached run succeeded but cold-cache run failed: {e}")
                });
                let warm = warm.unwrap_or_else(|e| {
                    panic!("uncached run succeeded but warm-cache run failed: {e}")
                });
                prop_assert_eq!(render(&map), render(&cold), "cold-cache run diverged");
                prop_assert_eq!(render(&map), render(&warm), "warm-cache run diverged");
            }
            Err(e) => {
                // A failing program must fail in a typed way everywhere;
                // the cache may legally rescue a fuel-starved run (hits
                // are cheaper), so only the error *shape* is compared.
                if let DslError::Gen(_) = &e {
                    prop_assert!(is_budget(&e), "untyped uncached failure: {}", e);
                }
                for (label, r) in [("cold", &cold), ("warm", &warm)] {
                    if let Err(DslError::Gen(_)) = r {
                        let err = r.as_ref().unwrap_err();
                        prop_assert!(
                            is_budget(err),
                            "untyped {} failure: {}", label, err
                        );
                    }
                }
            }
        }
    }
}

//! Property tests for the language: printer/parser round trips over
//! generated ASTs, and lexer robustness over arbitrary input.

use amgen_dsl::ast::{strip_spans, BinOp, Call, Entity, Expr, Param, Program, Stmt};
use amgen_dsl::lexer::lex;
use amgen_dsl::parser::parse;
use amgen_dsl::pretty::print_program;
use amgen_dsl::span::Span;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| s)
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|n| Expr::Number(n as f64, Span::NONE)),
        "[a-z]{1,8}".prop_map(|s| Expr::Str(s, Span::NONE)),
        ident().prop_map(|v| Expr::Var(v, Span::NONE)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Lt),
                    Just(BinOp::Ge),
                    Just(BinOp::Eq),
                ]
            )
                .prop_map(|(a, b, op)| Expr::Binary {
                    op,
                    lhs: Box::new(a),
                    rhs: Box::new(b),
                    span: Span::NONE,
                }),
            inner.prop_map(|e| Expr::Neg(Box::new(e), Span::NONE)),
        ]
    })
}

fn arb_call() -> impl Strategy<Value = Call> {
    (
        ident(),
        prop::collection::vec(arb_expr(), 0..3),
        prop::collection::vec((ident(), arb_expr()), 0..2),
    )
        .prop_map(|(name, positional, keyword)| Call {
            name: format!("F{name}"),
            positional,
            keyword: keyword
                .into_iter()
                .map(|(k, e)| (k, Span::NONE, e))
                .collect(),
            span: Span::NONE,
        })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (ident(), arb_expr()).prop_map(|(name, value)| Stmt::Assign {
            name,
            value,
            span: Span::NONE,
        }),
        arb_call().prop_map(Stmt::Call),
        (
            ident(),
            prop_oneof![Just("NORTH"), Just("SOUTH"), Just("EAST"), Just("WEST")]
        )
            .prop_map(|(obj, dir)| Stmt::Compact {
                obj,
                dir: dir.to_string(),
                ignore: vec![Expr::Str("poly".into(), Span::NONE)],
                span: Span::NONE,
                dir_span: Span::NONE,
            }),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            (
                ident(),
                arb_expr(),
                arb_expr(),
                prop::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(var, from, to, body)| Stmt::For {
                    var,
                    from,
                    to,
                    body,
                    span: Span::NONE,
                }),
            (
                arb_expr(),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(cond, then_body, else_body)| Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span: Span::NONE,
                }),
            prop::collection::vec(prop::collection::vec(inner, 1..3), 2..3).prop_map(|arms| {
                Stmt::Variant {
                    arms,
                    span: Span::NONE,
                }
            }),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(arb_stmt(), 0..4),
        prop::collection::vec(
            (
                ident(),
                prop::collection::vec((ident(), any::<bool>()), 0..3),
                prop::collection::vec(arb_stmt(), 1..4),
            ),
            0..3,
        ),
    )
        .prop_map(|(top, ents)| Program {
            top,
            entities: ents
                .into_iter()
                .map(|(name, params, body)| Entity {
                    name: format!("E{name}"),
                    params: {
                        // De-duplicate parameter names.
                        let mut seen = std::collections::HashSet::new();
                        params
                            .into_iter()
                            .filter(|(n, _)| seen.insert(n.clone()))
                            .map(|(name, optional)| Param {
                                name,
                                optional,
                                span: Span::NONE,
                            })
                            .collect()
                    },
                    body,
                    span: Span::NONE,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print ∘ parse ∘ print = print: printing is a parser fixed point.
    #[test]
    fn printed_programs_reparse_to_the_same_print(prog in arb_program()) {
        let printed = print_program(&prog);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed program must parse: {e}\n---\n{printed}"));
        prop_assert_eq!(print_program(&reparsed), printed);
    }

    /// parse ∘ print ∘ parse = parse structurally: for programs the
    /// analyzer accepts without findings, re-parsing the printed form
    /// yields the identical AST once spans are erased.
    #[test]
    fn lint_clean_sources_round_trip_structurally(idx in 0usize..5) {
        let src = [
            amgen_dsl::stdlib::FIG2_CONTACT_ROW,
            amgen_dsl::stdlib::FIG7_DIFF_PAIR,
            amgen_dsl::stdlib::INTERDIGIT,
            amgen_dsl::stdlib::CENTROID_PLACEMENT,
            amgen_dsl::stdlib::VARIANT_ROW,
        ][idx];
        let mut linter = amgen_lint::Linter::new();
        linter.load(amgen_dsl::stdlib::FIG2_CONTACT_ROW).unwrap();
        prop_assert!(linter.lint_source(src).is_empty(), "stdlib source must be lint-clean");
        let mut first = parse(src).unwrap();
        let printed = print_program(&first);
        let mut second = parse(&printed).unwrap();
        strip_spans(&mut first);
        strip_spans(&mut second);
        prop_assert_eq!(first, second);
    }

    /// The lexer never panics on arbitrary input (errors are fine).
    #[test]
    fn lexer_total_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = lex(&s);
    }

    /// The parser never panics on arbitrary token-ish input.
    #[test]
    fn parser_total_on_arbitrary_identifier_soup(
        words in prop::collection::vec("[A-Za-z0-9=(),<>\"]{1,8}", 0..30)
    ) {
        let src = words.join(" ");
        let _ = parse(&src);
    }
}

//! Property tests for the language: printer/parser round trips over
//! generated ASTs, and lexer robustness over arbitrary input.

use amgen_dsl::ast::{BinOp, Call, Entity, Expr, Param, Program, Stmt};
use amgen_dsl::lexer::lex;
use amgen_dsl::parser::parse;
use amgen_dsl::pretty::print_program;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| s)
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|n| Expr::Number(n as f64)),
        "[a-z]{1,8}".prop_map(Expr::Str),
        ident().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Lt),
                    Just(BinOp::Ge),
                    Just(BinOp::Eq),
                ]
            )
                .prop_map(|(a, b, op)| Expr::Binary {
                    op,
                    lhs: Box::new(a),
                    rhs: Box::new(b)
                }),
            inner.prop_map(|e| Expr::Neg(Box::new(e))),
        ]
    })
}

fn arb_call() -> impl Strategy<Value = Call> {
    (
        ident(),
        prop::collection::vec(arb_expr(), 0..3),
        prop::collection::vec((ident(), arb_expr()), 0..2),
    )
        .prop_map(|(name, positional, keyword)| Call {
            name: format!("F{name}"),
            positional,
            keyword,
            line: 0,
        })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (ident(), arb_expr()).prop_map(|(name, value)| Stmt::Assign {
            name,
            value,
            line: 0
        }),
        arb_call().prop_map(Stmt::Call),
        (
            ident(),
            prop_oneof![Just("NORTH"), Just("SOUTH"), Just("EAST"), Just("WEST")]
        )
            .prop_map(|(obj, dir)| Stmt::Compact {
                obj,
                dir: dir.to_string(),
                ignore: vec![Expr::Str("poly".into())],
                line: 0,
            }),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            (
                ident(),
                arb_expr(),
                arb_expr(),
                prop::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(var, from, to, body)| Stmt::For {
                    var,
                    from,
                    to,
                    body,
                    line: 0
                }),
            (
                arb_expr(),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(cond, then_body, else_body)| Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    line: 0
                }),
            prop::collection::vec(prop::collection::vec(inner, 1..3), 2..3)
                .prop_map(|arms| Stmt::Variant { arms, line: 0 }),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(arb_stmt(), 0..4),
        prop::collection::vec(
            (
                ident(),
                prop::collection::vec((ident(), any::<bool>()), 0..3),
                prop::collection::vec(arb_stmt(), 1..4),
            ),
            0..3,
        ),
    )
        .prop_map(|(top, ents)| Program {
            top,
            entities: ents
                .into_iter()
                .map(|(name, params, body)| Entity {
                    name: format!("E{name}"),
                    params: {
                        // De-duplicate parameter names.
                        let mut seen = std::collections::HashSet::new();
                        params
                            .into_iter()
                            .filter(|(n, _)| seen.insert(n.clone()))
                            .map(|(name, optional)| Param { name, optional })
                            .collect()
                    },
                    body,
                    line: 0,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print ∘ parse ∘ print = print: printing is a parser fixed point.
    #[test]
    fn printed_programs_reparse_to_the_same_print(prog in arb_program()) {
        let printed = print_program(&prog);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed program must parse: {e}\n---\n{printed}"));
        prop_assert_eq!(print_program(&reparsed), printed);
    }

    /// The lexer never panics on arbitrary input (errors are fine).
    #[test]
    fn lexer_total_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = lex(&s);
    }

    /// The parser never panics on arbitrary token-ish input.
    #[test]
    fn parser_total_on_arbitrary_identifier_soup(
        words in prop::collection::vec("[A-Za-z0-9=(),<>\"]{1,8}", 0..30)
    ) {
        let src = words.join(" ");
        let _ = parse(&src);
    }
}

//! Run-to-run determinism over every example program: two independent
//! interpreter runs must produce byte-identical layouts (Debug
//! rendering included, so shape order, net numbering and port order all
//! count) and byte-identical lint diagnostics. This is the regression
//! net for HashMap-iteration-order leaks — a content-addressed cache
//! turns any such leak into a wrong-answer bug.

use std::collections::BTreeMap;

use amgen_db::LayoutObject;
use amgen_dsl::interp::Interpreter;
use amgen_lint::Linter;
use amgen_tech::Tech;

fn examples() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples");
    let mut sources: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("examples directory")
        .filter_map(|e| {
            let path = e.ok()?.path();
            (path.extension()? == "amg").then(|| {
                (
                    path.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read_to_string(&path).unwrap(),
                )
            })
        })
        .collect();
    sources.sort();
    assert!(!sources.is_empty(), "no .amg examples found in {dir}");
    sources
}

fn render(map: &BTreeMap<String, LayoutObject>) -> String {
    format!("{map:#?}")
}

#[test]
fn every_example_is_byte_identical_across_runs() {
    // One compiled ruleset for both runs: layer handles carry a
    // per-compile brand, and determinism is defined per technology.
    let rules = Tech::bicmos_1u().compile_arc();
    let all = examples();
    for (name, src) in examples() {
        let run = || {
            let mut interp = Interpreter::new(&rules);
            for (_, lib) in &all {
                interp.load(lib).unwrap();
            }
            render(&interp.run(&src).unwrap_or_else(|e| {
                panic!("example {name} failed: {e}");
            }))
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "layouts of {name} differ between runs");
    }
}

#[test]
fn every_example_lints_byte_identically_across_runs() {
    let rules = Tech::bicmos_1u().compile_arc();
    for (name, src) in examples() {
        let run = || {
            Linter::with_rules(std::sync::Arc::clone(&rules))
                .lint_source(&src)
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "diagnostics of {name} differ between runs");
    }
}

/// The same programs run warm against a shared cache: the cached result
/// must render byte-identically to the cold one (cache transparency at
/// the whole-program level).
#[test]
fn every_example_is_cache_transparent() {
    let rules = Tech::bicmos_1u().compile_arc();
    let all = examples();
    for (name, src) in examples() {
        let ctx = amgen_core::GenCtx::new(std::sync::Arc::clone(&rules)).with_default_cache();
        let mut interp = Interpreter::new(&ctx);
        for (_, lib) in &all {
            interp.load(lib).unwrap();
        }
        let cold = render(&interp.run(&src).unwrap());
        let warm = render(&interp.run(&src).unwrap());
        assert_eq!(cold, warm, "cached rerun of {name} differs");

        let mut fresh = Interpreter::new(&rules);
        for (_, lib) in &all {
            fresh.load(lib).unwrap();
        }
        let uncached = render(&fresh.run(&src).unwrap());
        assert_eq!(cold, uncached, "cached run of {name} differs from uncached");
    }
}

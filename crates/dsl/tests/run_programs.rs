//! Integration tests: complete programs from the paper run end-to-end.

use amgen_drc::Drc;
use amgen_dsl::{stdlib, DslError, Interpreter, Value};
use amgen_tech::Tech;

fn interp(t: &Tech) -> Interpreter {
    let mut i = Interpreter::new(t);
    i.load(stdlib::FIG2_CONTACT_ROW).unwrap();
    i.load(stdlib::FIG7_DIFF_PAIR).unwrap();
    i.load(stdlib::INTERDIGIT).unwrap();
    i.load(stdlib::VARIANT_ROW).unwrap();
    i
}

#[test]
fn fig2_contact_row_variants() {
    let t = Tech::bicmos_1u();
    let mut i = interp(&t);
    // The three calls of Fig. 3: defaults, W given, W and L given.
    let out = i
        .run(
            r#"
left = ContactRow(layer = "poly")
middle = ContactRow(layer = "poly", W = 10)
right = ContactRow(layer = "poly", W = 8, L = 6)
"#,
        )
        .unwrap();
    let ct = t.layer("contact").unwrap();
    let left = &out["left"];
    let middle = &out["middle"];
    let right = &out["right"];
    assert_eq!(left.shapes_on(ct).count(), 1);
    assert!(middle.shapes_on(ct).count() >= 4);
    assert!(middle.bbox().width() >= 10_000);
    // 2-D array for the right variant.
    let xs: std::collections::HashSet<i64> = right.shapes_on(ct).map(|s| s.rect.x0).collect();
    let ys: std::collections::HashSet<i64> = right.shapes_on(ct).map(|s| s.rect.y0).collect();
    assert!(xs.len() > 1 && ys.len() > 1);
    for obj in [left, middle, right] {
        let v = Drc::new(&t).check(obj);
        assert!(v.is_empty(), "{v:?}");
    }
}

#[test]
fn fig7_diff_pair_builds_row_gate_row_gate_row() {
    let t = Tech::bicmos_1u();
    let mut i = interp(&t);
    let out = i.run("diff = DiffPair(W = 10, L = 2)\n").unwrap();
    let pair = &out["diff"];
    let poly = t.layer("poly").unwrap();
    let pdiff = t.layer("pdiff").unwrap();
    // Two vertical gate stripes.
    let gates: Vec<_> = pair
        .shapes_on(poly)
        .filter(|s| s.rect.height() > 3 * s.rect.width())
        .collect();
    assert_eq!(gates.len(), 2, "two transistors");
    // Three diffusion contact rows: count contact groups on pdiff rows by
    // looking at metal columns holding contacts.
    let ct = t.layer("contact").unwrap();
    let diff_contacts = pair
        .shapes_on(ct)
        .filter(|c| pair.shapes_on(pdiff).any(|d| d.rect.contains_rect(&c.rect)))
        .count();
    assert!(diff_contacts >= 3, "diffusion rows are contacted");
    let v = Drc::new(&t).check_spacing(pair);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn fig7_matches_paper_shape_hierarchy() {
    // The paper: "two transistors, three diffusion-contact-rows and two
    // poly-contacts".
    let t = Tech::bicmos_1u();
    let mut i = interp(&t);
    let out = i.run("diff = DiffPair(W = 10, L = 2)\n").unwrap();
    let pair = &out["diff"];
    let pdiff = t.layer("pdiff").unwrap();
    let m1 = t.layer("metal1").unwrap();
    // Metal rows on diffusion: three distinct columns.
    let mut cols: Vec<i64> = pair
        .shapes_on(m1)
        .filter(|m| pair.shapes_on(pdiff).any(|d| d.rect == m.rect))
        .map(|m| m.rect.x0)
        .collect();
    cols.sort_unstable();
    cols.dedup();
    assert_eq!(cols.len(), 3, "three diffusion contact rows");
}

#[test]
fn interdigit_loop_scales_with_n() {
    let t = Tech::bicmos_1u();
    let mut i = interp(&t);
    let small = i.run("m = Interdigit(n = 2, W = 8, L = 1)\n").unwrap();
    let big = i.run("m = Interdigit(n = 6, W = 8, L = 1)\n").unwrap();
    let poly = t.layer("poly").unwrap();
    let count = |o: &amgen_db::LayoutObject| {
        o.shapes_on(poly)
            .filter(|s| s.rect.height() > 3 * s.rect.width())
            .count()
    };
    assert_eq!(count(&small["m"]), 2);
    assert_eq!(count(&big["m"]), 6);
    assert!(big["m"].bbox().width() > small["m"].bbox().width());
}

#[test]
fn variant_backtracking_selects_by_rating() {
    let t = Tech::bicmos_1u();
    let i = interp(&t);
    // Both variants of FlexRow, enumerated explicitly.
    let variants = i
        .eval_entity_variants(
            "FlexRow",
            &[
                ("layer", Value::Str("poly".into())),
                ("S", Value::Num(10.0)),
            ],
        )
        .unwrap();
    assert_eq!(variants.len(), 2);
    let (a, b) = (&variants[0], &variants[1]);
    // One is wide, the other tall.
    let wide = a.bbox().width() > a.bbox().height();
    let tall = b.bbox().height() > b.bbox().width();
    assert!(wide && tall, "{} vs {}", a.bbox(), b.bbox());
    // Best-variant selection returns one of them.
    let best = i
        .eval_entity(
            "FlexRow",
            &[
                ("layer", Value::Str("poly".into())),
                ("S", Value::Num(10.0)),
            ],
        )
        .unwrap();
    assert!(!best.is_empty());
}

#[test]
fn conditionals_choose_geometry() {
    let t = Tech::bicmos_1u();
    let mut i = interp(&t);
    let src = r#"
a = Cond(w = 20)
b = Cond(w = 2)

ENT Cond(w)
  IF w > 10
    INBOX("poly", W = w)
  ELSE
    INBOX("poly", W = 10)
  END
"#;
    let out = i.run(src).unwrap();
    assert_eq!(out["a"].bbox().width(), 20_000);
    assert_eq!(out["b"].bbox().width(), 10_000);
}

#[test]
fn arithmetic_in_parameters() {
    let t = Tech::bicmos_1u();
    let mut i = interp(&t);
    let out = i
        .run("row = ContactRow(layer = \"poly\", W = 4 * 2 + 2)\n")
        .unwrap();
    assert_eq!(out["row"].bbox().width(), 10_000);
}

#[test]
fn unknown_entity_reports_line() {
    let t = Tech::bicmos_1u();
    let mut i = interp(&t);
    let e = i.run("x = Nonsense(W = 1)\n").unwrap_err();
    assert!(matches!(e, DslError::Runtime { line: 1, .. }), "{e}");
}

#[test]
fn missing_required_parameter_is_an_error() {
    let t = Tech::bicmos_1u();
    let mut i = interp(&t);
    // `layer` is required in ContactRow.
    let e = i.run("x = ContactRow(W = 1)\n").unwrap_err();
    assert!(matches!(e, DslError::Runtime { .. }), "{e}");
}

#[test]
fn unknown_layer_is_a_runtime_error() {
    let t = Tech::bicmos_1u();
    let mut i = interp(&t);
    let e = i
        .run("x = ContactRow(layer = \"unobtainium\")\n")
        .unwrap_err();
    assert!(e.to_string().contains("unobtainium"));
}

#[test]
fn bad_direction_is_a_runtime_error() {
    let t = Tech::bicmos_1u();
    let mut i = interp(&t);
    let src =
        "x = Bad()\n\nENT Bad()\n  r = ContactRow(layer = \"poly\")\n  compact(r, SIDEWAYS)\n";
    let e = i.run(src).unwrap_err();
    assert!(e.to_string().contains("SIDEWAYS"));
}

#[test]
fn fig2_works_in_the_cmos_deck_too() {
    // Technology independence: the same source, another rule deck.
    let t = Tech::cmos_08();
    let mut i = interp(&t);
    let out = i
        .run("row = ContactRow(layer = \"poly\", W = 10)\n")
        .unwrap();
    let v = Drc::new(&t).check(&out["row"]);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn run_traced_snapshots_every_statement() {
    let t = Tech::bicmos_1u();
    let mut i = interp(&t);
    let src = "a = ContactRow(layer = \"poly\", W = 4)\nb = ContactRow(layer = \"poly\", W = 10)\n";
    let (final_map, snaps) = i.run_traced(src).unwrap();
    assert_eq!(snaps.len(), 2);
    assert_eq!(snaps[0].1.len(), 1, "only `a` exists after statement 1");
    assert_eq!(snaps[1].1.len(), 2);
    assert!(snaps[0].0.contains("ContactRow"));
    assert_eq!(final_map.len(), 2);
    assert!(final_map["b"].bbox().width() > final_map["a"].bbox().width());
}

#[test]
fn run_traced_rejects_variants() {
    let t = Tech::bicmos_1u();
    let mut i = interp(&t);
    let e = i
        .run_traced("x = FlexRow(layer = \"poly\", S = 8)\n")
        .unwrap_err();
    assert!(e.to_string().contains("VARIANT"));
}

#[test]
fn entity_calls_nest_and_copy() {
    let t = Tech::bicmos_1u();
    let mut i = interp(&t);
    // trans2 = trans1 copies the data structure: both compact in.
    let src = r#"
m = Two(W = 6)

ENT Two(<W>)
  a = ContactRow(layer = "poly", L = W)
  b = a
  compact(a, WEST, "poly")
  compact(b, WEST, "poly")
"#;
    let out = i.run(src).unwrap();
    let ct = t.layer("contact").unwrap();
    let n_one = {
        let mut j = interp(&t);
        let one = j.run("m = ContactRow(layer = \"poly\", L = 6)\n").unwrap();
        one["m"].shapes_on(ct).count()
    };
    assert_eq!(out["m"].shapes_on(ct).count(), 2 * n_one);
}

#[test]
fn centroid_placement_in_pure_dsl() {
    let t = Tech::bicmos_1u();
    let mut i = Interpreter::new(&t);
    i.load(stdlib::FIG2_CONTACT_ROW).unwrap();
    i.load(stdlib::CENTROID_PLACEMENT).unwrap();
    let out = i
        .run("e = CentroidE(side = 4, center = 8, W = 6, L = 1)\n")
        .unwrap();
    let m = &out["e"];
    let poly = t.layer("poly").unwrap();
    let stripes: Vec<_> = m
        .shapes_on(poly)
        .filter(|s| s.rect.height() > 3 * s.rect.width())
        .map(|s| s.rect.center().x)
        .collect();
    // 4 + (2+2) + 8 + (2+2) + 4 = 24 gate fingers, like the native block E.
    assert_eq!(stripes.len(), 24);
    // The arrangement is left-right symmetric about the module centre.
    let cx = m.bbox().center().x;
    let left = stripes.iter().filter(|&&x| x < cx).count();
    let right = stripes.iter().filter(|&&x| x > cx).count();
    assert_eq!(left, right);
    let v = Drc::new(&t).check_spacing(m);
    assert!(v.is_empty(), "{v:?}");
    // The paper needed ~180 lines for module E; the loop-equipped language
    // needs far fewer for the same placement.
    let lines = stdlib::CENTROID_PLACEMENT
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count();
    assert!(lines < 180, "{lines} lines");
    assert!(lines > 30, "it is still a complex module: {lines} lines");
}

//! Property tests for the successive compactor beyond the DRC-cleanliness
//! suite in `amgen-drc`: keepout protection, merge semantics, offset
//! monotonicity.

use amgen_compact::{CompactOptions, Compactor};
use amgen_db::{LayoutObject, Shape};
use amgen_geom::{Dir, Rect};
use amgen_tech::Tech;
use proptest::prelude::*;

fn stripe(
    tech: &Tech,
    layer: &str,
    w: i64,
    h: i64,
    net: Option<&str>,
    keepout: bool,
) -> LayoutObject {
    let l = tech.layer(layer).unwrap();
    let mut o = LayoutObject::new("s");
    let mut s = Shape::new(l, Rect::new(0, 0, w, h));
    if let Some(n) = net {
        let id = o.net(n);
        s = s.with_net(id);
    }
    if keepout {
        s = s.with_keepout();
    }
    o.push(s);
    o
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Keepout shapes are never overlapped by later objects, whatever the
    /// layer mix (no spacing rule exists between poly and metal1, so only
    /// the keepout protects).
    #[test]
    fn keepout_is_never_overlapped(
        sizes in prop::collection::vec((2i64..10, 2i64..10), 1..6),
        sides in prop::collection::vec(0usize..4, 1..6),
    ) {
        let tech = Tech::bicmos_1u();
        let c = Compactor::new(&tech);
        let mut main = LayoutObject::new("main");
        let protected = stripe(&tech, "poly", 4_000, 4_000, None, true);
        c.compact(&mut main, &protected, Dir::West, &CompactOptions::new()).unwrap();
        let protected_rect = main.shapes()[0].rect;
        for (i, &(w, h)) in sizes.iter().enumerate() {
            let side = Dir::ALL[sides[i % sides.len()]];
            let obj = stripe(&tech, "metal1", w * 1_000, h * 1_000, None, false);
            c.compact(&mut main, &obj, side, &CompactOptions::new()).unwrap();
        }
        for s in main.shapes().iter().skip(1) {
            prop_assert!(!s.rect.overlaps(&protected_rect), "{} overlaps keepout", s.rect);
        }
    }

    /// Same-net objects always stop at touch (never overlap, never gap)
    /// when their projections collide.
    #[test]
    fn same_net_abutment_is_exact(w in 2i64..12, h in 2i64..12, n in 2usize..6) {
        let tech = Tech::bicmos_1u();
        let c = Compactor::new(&tech);
        let mut main = LayoutObject::new("main");
        let obj = stripe(&tech, "metal1", w * 1_000, h * 1_000, Some("vdd"), false);
        for _ in 0..n {
            c.compact(&mut main, &obj, Dir::East, &CompactOptions::new()).unwrap();
        }
        // The strip is exactly n abutting copies: total width n * w.
        prop_assert_eq!(main.bbox().width(), n as i64 * w * 1_000);
        let m1 = tech.layer("metal1").unwrap();
        let region: amgen_geom::Region = main.shapes_on(m1).map(|s| s.rect).collect();
        prop_assert_eq!(region.area(), (n as i128) * (w as i128 * 1_000) * (h as i128 * 1_000));
    }

    /// Compacting from opposite sides is symmetric: the gaps agree.
    #[test]
    fn opposite_sides_give_mirror_results(w in 1i64..8, h in 1i64..8) {
        let tech = Tech::bicmos_1u();
        let c = Compactor::new(&tech);
        let obj = stripe(&tech, "poly", w * 1_000, h * 1_000, None, false);
        let run = |side: Dir| {
            let mut main = LayoutObject::new("main");
            c.compact(&mut main, &obj, side, &CompactOptions::new()).unwrap();
            c.compact(&mut main, &obj, side, &CompactOptions::new()).unwrap();
            main.bbox()
        };
        let east = run(Dir::East);
        let west = run(Dir::West);
        prop_assert_eq!(east.width(), west.width());
        let north = run(Dir::North);
        let south = run(Dir::South);
        prop_assert_eq!(north.height(), south.height());
    }

    /// Extra clearance shifts the result by exactly the clearance.
    #[test]
    fn extra_clearance_is_additive(extra in 0i64..40) {
        let tech = Tech::bicmos_1u();
        let c = Compactor::new(&tech);
        let obj = stripe(&tech, "poly", 2_000, 5_000, None, false);
        let extra = extra * 50; // grid multiples
        let width = |e: i64| {
            let mut main = LayoutObject::new("main");
            c.compact(&mut main, &obj, Dir::East, &CompactOptions::new()).unwrap();
            c.compact(
                &mut main,
                &obj,
                Dir::East,
                &CompactOptions::new().with_extra_clearance(e),
            )
            .unwrap();
            main.bbox().width()
        };
        prop_assert_eq!(width(extra), width(0) + extra);
    }
}

//! The constraint scan and placement engine.

use amgen_core::{FaultSite, GenCtx, GenError, IntoGenCtx, Stage};
use amgen_db::{LayoutObject, Shape};
use amgen_geom::{Coord, Dir, Rect, Vector};
use amgen_tech::{LayerKind, RuleSet};

use crate::options::CompactOptions;
use crate::rebuild::rebuild_group;

/// Result of one compaction step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Displacement applied to the compacted object.
    pub offset: Vector,
    /// True when a design-rule constraint placed the object; false when
    /// the fallback bounding-box abutment was used (no constraining pair).
    pub rule_bound: bool,
    /// Number of variable edges the compactor moved (Fig. 5b).
    pub shrunk_edges: usize,
    /// Number of groups rebuilt after edge movement.
    pub rebuilt_groups: usize,
    /// Number of auto-connect bridges inserted (Fig. 5a).
    pub bridges: usize,
}

/// Errors from a compaction step.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompactError {
    /// The object to compact has no shapes.
    EmptyObject,
    /// Budget exhaustion, cancellation or an injected fault, from the
    /// shared generation context.
    Gen(GenError),
}

impl std::fmt::Display for CompactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactError::EmptyObject => write!(f, "cannot compact an empty object"),
            CompactError::Gen(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompactError {}

impl From<GenError> for CompactError {
    fn from(e: GenError) -> CompactError {
        CompactError::Gen(e)
    }
}

impl From<CompactError> for GenError {
    /// Unifies compaction failures under the `amgen-core` error: typed
    /// robustness errors pass through untouched, stage-specific ones are
    /// wrapped with [`Stage::Compact`] context.
    fn from(e: CompactError) -> GenError {
        match e {
            CompactError::Gen(g) => g,
            other => GenError::stage_msg(Stage::Compact, other.to_string()),
        }
    }
}

/// The successive compactor, bound to one technology.
#[derive(Debug, Clone)]
pub struct Compactor {
    ctx: GenCtx,
}

/// A candidate shrink action on a variable edge.
struct Shrink {
    /// True = shape lives in `main`, false = in the moving object.
    in_main: bool,
    /// Shape index.
    index: usize,
    /// The edge to move (a facing edge of the binding pair).
    edge: Dir,
    /// Furthest coordinate the edge may move to.
    limit: Coord,
}

impl Compactor {
    /// Binds the compactor to a generation context (or anything that
    /// converts into one, e.g. `&Tech`).
    pub fn new(ctx: impl IntoGenCtx) -> Compactor {
        Compactor {
            ctx: ctx.into_gen_ctx(),
        }
    }

    /// The shared generation context.
    pub fn ctx(&self) -> &GenCtx {
        &self.ctx
    }

    /// The compiled rule kernel.
    pub fn rules(&self) -> &RuleSet {
        &self.ctx
    }

    /// Slides `obj` against `main` from attachment side `side` and folds
    /// it in (see the crate docs for the direction convention).
    ///
    /// Into an empty `main` the object is absorbed unmoved — the paper's
    /// *"the first compaction command copies the first transistor into the
    /// data structure"*.
    pub fn compact(
        &self,
        main: &mut LayoutObject,
        obj: &LayoutObject,
        side: Dir,
        opts: &CompactOptions,
    ) -> Result<CompactReport, CompactError> {
        if obj.is_empty() {
            return Err(CompactError::EmptyObject);
        }
        // Robustness checkpoint: one compaction step of budget, the
        // shared cancellation/deadline probe, and the chaos-test hook.
        self.ctx.charge_compact_step()?;
        self.ctx.fault_check(FaultSite::CompactStep, obj.name())?;
        let t0 = std::time::Instant::now();
        let mut span = self
            .ctx
            .span_fine(Stage::Compact, || amgen_core::name!("step:{}", obj.name()));
        let bbox_before = if span.is_recording() {
            Some(main.bbox())
        } else {
            None
        };
        if main.is_empty() {
            main.absorb(obj, Vector::ZERO);
            self.ctx.metrics.add_objects_placed(1);
            self.ctx
                .metrics
                .add_stage_nanos(Stage::Compact, t0.elapsed().as_nanos() as u64);
            span.arg("absorbed_first", 1i64);
            return Ok(CompactReport {
                offset: Vector::ZERO,
                rule_bound: false,
                shrunk_edges: 0,
                rebuilt_groups: 0,
                bridges: 0,
            });
        }
        let mut work = obj.clone();
        let mut shrunk_edges = 0usize;
        let mut rebuilt_groups = 0usize;

        // Iterate: find the binding constraint; if a variable facing edge
        // can relax it, move the edge and rebuild, then rescan.
        let mut iters = 0usize;
        let (offset_along, rule_bound) = loop {
            let bounds = self.scan(main, &work, side, opts);
            let Some((best, binding)) = pick_binding(&bounds, side) else {
                break (self.fallback_offset(main, &work, side), false);
            };
            iters += 1;
            if !opts.variable_edges || iters > opts.max_shrink_iters {
                break (best, true);
            }
            // Second-best bound: how far a shrink could usefully go.
            let second = second_bound(&bounds, best, side);
            let mut progressed = false;
            for &(ai, bi) in &binding {
                for shrink in self.shrink_candidates(main, &work, ai, bi, side) {
                    let target_obj: &mut LayoutObject =
                        if shrink.in_main { main } else { &mut work };
                    let s = &mut target_obj.shapes_mut()[shrink.index];
                    let cur = s.rect.edge(shrink.edge);
                    // Move the edge inward by what is needed (to make the
                    // second bound binding) or to its limit.
                    let needed = match second {
                        Some(sec) => (best - sec).abs(),
                        None => Coord::MAX,
                    };
                    let inward = shrink.edge.sign(); // edge retreats opposite its facing
                    let want = cur - inward * needed.min((cur - shrink.limit).abs());
                    let new_pos = clamp_toward(cur, want, shrink.limit, inward);
                    if new_pos == cur {
                        continue;
                    }
                    s.rect = s.rect.with_edge(shrink.edge, new_pos);
                    shrunk_edges += 1;
                    progressed = true;
                    // Rebuild every group containing this shape.
                    let gids: Vec<usize> = target_obj
                        .groups()
                        .iter()
                        .enumerate()
                        .filter(|(_, g)| g.shapes.contains(&shrink.index))
                        .map(|(i, _)| i)
                        .collect();
                    for gid in gids {
                        if rebuild_group(&self.ctx, target_obj, gid) {
                            rebuilt_groups += 1;
                        }
                    }
                }
            }
            if !progressed {
                break (best, true);
            }
        };

        let v = Vector::step_along(side.axis(), offset_along);
        let absorbed_at = main.absorb(&work, v);
        let bridges = self.bridge(main, absorbed_at, side, opts);
        self.ctx.metrics.add_objects_placed(1);
        for _ in 0..rebuilt_groups {
            self.ctx.metrics.add_rebuild();
        }
        self.ctx
            .metrics
            .add_stage_nanos(Stage::Compact, t0.elapsed().as_nanos() as u64);
        if let Some(before) = bbox_before {
            let after = main.bbox();
            span.arg("offset", offset_along);
            span.arg("rule_bound", rule_bound as i64);
            span.arg("shrunk_edges", shrunk_edges);
            span.arg("rebuilt_groups", rebuilt_groups);
            span.arg("bridges", bridges);
            span.arg("bbox_dw", after.width() - before.width());
            span.arg("bbox_dh", after.height() - before.height());
        }
        Ok(CompactReport {
            offset: v,
            rule_bound,
            shrunk_edges,
            rebuilt_groups,
            bridges,
        })
    }

    /// Computes all one-sided bounds between the moving object and the
    /// main structure, together with the contributing pair indices
    /// `(obj_shape, main_shape)`.
    fn scan(
        &self,
        main: &LayoutObject,
        obj: &LayoutObject,
        side: Dir,
        opts: &CompactOptions,
    ) -> Vec<(Coord, usize, usize)> {
        let axis = side.axis();
        let perp = axis.perp();
        let mut out = Vec::new();
        for (ai, a) in obj.shapes().iter().enumerate() {
            for (bi, b) in main.shapes().iter().enumerate() {
                let Some(g) = self.required_gap(a, obj, b, main, opts) else {
                    continue;
                };
                // Perpendicular conflict: projections closer than the gap.
                if a.rect.gap_along(&b.rect, perp) >= g {
                    continue;
                }
                let bound = match side.sign() {
                    1 => b.rect.range(axis).hi + g - a.rect.range(axis).lo,
                    _ => b.rect.range(axis).lo - g - a.rect.range(axis).hi,
                };
                out.push((bound, ai, bi));
            }
        }
        out
    }

    /// The spacing the rules demand between two shapes from different
    /// objects; `None` means the pair imposes no constraint.
    fn required_gap(
        &self,
        a: &Shape,
        a_obj: &LayoutObject,
        b: &Shape,
        b_obj: &LayoutObject,
        opts: &CompactOptions,
    ) -> Option<Coord> {
        // Ignored layers are declared mergeable for this step: pairs
        // *within* them impose nothing (the geometry will be connected),
        // but rules against other layers still hold — a poly contact row
        // compacted with poly "irrelevant" must still respect poly-to-
        // diffusion spacing.
        if opts.is_ignored(a.layer) && opts.is_ignored(b.layer) {
            return None;
        }
        let same_net = match (a.net, b.net) {
            (Some(x), Some(y)) => a_obj.net_name(x) == b_obj.net_name(y),
            _ => false,
        };
        if a.layer == b.layer {
            if same_net {
                // Same potential: stop at touch, then merge (Fig. 5a).
                return Some(0);
            }
            return self
                .ctx
                .min_spacing(a.layer, b.layer)
                .map(|s| s + opts.extra_clearance)
                .or(if a.keepout || b.keepout {
                    Some(0)
                } else {
                    None
                });
        }
        if let Some(s) = self.ctx.min_spacing(a.layer, b.layer) {
            return Some(s + opts.extra_clearance);
        }
        // A cut may not land on a foreign conductor it could short to.
        let cut_vs_conductor = |cut: &Shape, cond: &Shape| {
            self.ctx.kind(cut.layer) == LayerKind::Cut
                && self.ctx.kind(cond.layer).is_conductor()
                && self
                    .ctx
                    .connected_pairs(cut.layer)
                    .iter()
                    .any(|&(x, y)| x == cond.layer || y == cond.layer)
        };
        if cut_vs_conductor(a, b) || cut_vs_conductor(b, a) {
            let cut_layer = if self.ctx.kind(a.layer) == LayerKind::Cut {
                a.layer
            } else {
                b.layer
            };
            let fallback = self.ctx.min_spacing(cut_layer, cut_layer).unwrap_or(0);
            return Some(fallback + opts.extra_clearance);
        }
        if a.keepout || b.keepout {
            return Some(0);
        }
        None
    }

    /// Offset when no rule constrains the object: rest the bounding boxes
    /// against each other on the attachment side.
    fn fallback_offset(&self, main: &LayoutObject, obj: &LayoutObject, side: Dir) -> Coord {
        let axis = side.axis();
        let (mb, ob) = (main.bbox(), obj.bbox());
        match side.sign() {
            1 => mb.range(axis).hi - ob.range(axis).lo,
            _ => mb.range(axis).lo - ob.range(axis).hi,
        }
    }

    /// Shrink candidates for one binding pair: the facing edge on the
    /// main side and the facing edge on the object side, if variable.
    fn shrink_candidates(
        &self,
        main: &LayoutObject,
        obj: &LayoutObject,
        ai: usize,
        bi: usize,
        side: Dir,
    ) -> Vec<Shrink> {
        let mut out = Vec::new();
        // Main-side shape faces the attachment side.
        let b = &main.shapes()[bi];
        if b.edges.is_variable(side) {
            if let Some(limit) = self.shrink_limit(main, bi, side) {
                out.push(Shrink {
                    in_main: true,
                    index: bi,
                    edge: side,
                    limit,
                });
            }
        }
        // Object-side shape faces the opposite way.
        let a = &obj.shapes()[ai];
        let e = side.opposite();
        if a.edges.is_variable(e) {
            if let Some(limit) = self.shrink_limit(obj, ai, e) {
                out.push(Shrink {
                    in_main: false,
                    index: ai,
                    edge: e,
                    limit,
                });
            }
        }
        out
    }

    /// The furthest coordinate the given edge may retreat to, or `None`
    /// when the edge cannot move at all.
    ///
    /// Limits considered:
    /// * the layer's minimum width,
    /// * room for one cut plus enclosure when the shape belongs to a
    ///   rebuildable contact-array group,
    /// * enclosure of *existing* cuts inside the shape when it does not
    ///   (those cuts would not be recalculated).
    fn shrink_limit(&self, obj: &LayoutObject, index: usize, edge: Dir) -> Option<Coord> {
        let s = &obj.shapes()[index];
        let far = s.rect.edge(edge.opposite()); // the fixed opposite edge
        let inward = edge.sign();
        let mut min_len = self.ctx.min_width(s.layer);
        let mut in_rebuild_group = false;
        for g in obj.groups() {
            if !g.shapes.contains(&index) {
                continue;
            }
            if let Some(amgen_db::RebuildKind::ContactArray { cut }) = g.rebuild {
                in_rebuild_group = true;
                if let Ok(cs) = self.ctx.cut_size(cut) {
                    let need = cs + 2 * self.ctx.enclosure(s.layer, cut);
                    min_len = min_len.max(need);
                }
            }
        }
        let mut limit = far + inward * min_len;
        if !in_rebuild_group {
            // Keep enclosing any cut currently inside this shape.
            for other in obj.shapes() {
                if self.ctx.kind(other.layer) == LayerKind::Cut && s.rect.contains_rect(&other.rect)
                {
                    let enc = self.ctx.enclosure(s.layer, other.layer);
                    let keep = other.rect.edge(edge) + inward * enc;
                    limit = if inward > 0 {
                        limit.max(keep)
                    } else {
                        limit.min(keep)
                    };
                }
            }
        }
        let cur = s.rect.edge(edge);
        // The limit must lie strictly inward of the current position.
        if (inward > 0 && limit >= cur) || (inward < 0 && limit <= cur) {
            return None;
        }
        Some(limit)
    }

    /// Auto-connect: bridges same-potential geometry on the ignored
    /// layers between the freshly absorbed shapes (`>= absorbed_at`) and
    /// the pre-existing ones.
    fn bridge(
        &self,
        main: &mut LayoutObject,
        absorbed_at: usize,
        side: Dir,
        opts: &CompactOptions,
    ) -> usize {
        let axis = side.axis();
        let perp = axis.perp();
        let mut new_shapes: Vec<Shape> = Vec::new();
        for ai in absorbed_at..main.len() {
            let a = main.shapes()[ai];
            if !opts.is_ignored(a.layer) || !self.ctx.kind(a.layer).is_conductor() {
                continue;
            }
            // Find the nearest compatible neighbour: if some neighbour
            // already touches, the shape is connected and needs no
            // bridge; otherwise bridge the smallest positive gap only
            // (bridging every distant shape would span occupied space and
            // breed redundant geometry).
            let mut best: Option<(usize, amgen_geom::Coord)> = None;
            let mut touching = false;
            for bi in 0..absorbed_at {
                let b = main.shapes()[bi];
                if b.layer != a.layer {
                    continue;
                }
                let compatible = match (a.net, b.net) {
                    (Some(x), Some(y)) => x == y,
                    _ => true, // unassigned potential joins freely
                };
                if !compatible {
                    continue;
                }
                let overlap = a.rect.range(perp).overlap_len(&b.rect.range(perp));
                if overlap <= 0 {
                    continue;
                }
                let gap = a.rect.gap_along(&b.rect, axis);
                if gap <= 0 {
                    touching = true;
                    break;
                }
                if best.is_none_or(|(_, g)| gap < g) {
                    best = Some((bi, gap));
                }
            }
            if touching {
                continue;
            }
            if let Some((bi, _)) = best {
                let b = main.shapes()[bi];
                // Bridge rectangle: span the gap, width = the overlap
                // (at least the layer's minimum width).
                let pr = a
                    .rect
                    .range(perp)
                    .intersection(&b.rect.range(perp))
                    .expect("positive overlap");
                let min_w = self.ctx.min_width(a.layer);
                let (plo, phi) = if pr.len() >= min_w {
                    (pr.lo, pr.hi)
                } else {
                    let c = pr.lo + pr.len() / 2;
                    (c - min_w / 2, c - min_w / 2 + min_w)
                };
                let ar = a.rect.range(axis);
                let br = b.rect.range(axis);
                let (alo, ahi) = if ar.lo >= br.hi {
                    (br.hi, ar.lo)
                } else {
                    (ar.hi, br.lo)
                };
                let rect = match axis {
                    amgen_geom::Axis::X => Rect::new(alo, plo, ahi, phi),
                    amgen_geom::Axis::Y => Rect::new(plo, alo, phi, ahi),
                };
                let mut s = Shape::new(a.layer, rect);
                if let Some(n) = a.net.or(b.net) {
                    s = s.with_net(n);
                }
                new_shapes.push(s);
            }
        }
        let n = new_shapes.len();
        for s in new_shapes {
            main.push(s);
        }
        n
    }
}

/// The binding bound (max for East/North sides, min for West/South) and
/// the pairs achieving it.
fn pick_binding(
    bounds: &[(Coord, usize, usize)],
    side: Dir,
) -> Option<(Coord, Vec<(usize, usize)>)> {
    if bounds.is_empty() {
        return None;
    }
    let best = match side.sign() {
        1 => bounds.iter().map(|&(b, _, _)| b).max().expect("non-empty"),
        _ => bounds.iter().map(|&(b, _, _)| b).min().expect("non-empty"),
    };
    let pairs = bounds
        .iter()
        .filter(|&&(b, _, _)| b == best)
        .map(|&(_, ai, bi)| (ai, bi))
        .collect();
    Some((best, pairs))
}

/// The strictest bound that is *not* the binding one.
fn second_bound(bounds: &[(Coord, usize, usize)], best: Coord, side: Dir) -> Option<Coord> {
    let it = bounds.iter().map(|&(b, _, _)| b).filter(|&b| b != best);
    match side.sign() {
        1 => it.max(),
        _ => it.min(),
    }
}

/// A step of length `d` along an axis (sign included in `d`).
trait VectorExt {
    fn step_along(axis: amgen_geom::Axis, d: Coord) -> Vector;
}

impl VectorExt for Vector {
    fn step_along(axis: amgen_geom::Axis, d: Coord) -> Vector {
        match axis {
            amgen_geom::Axis::X => Vector::new(d, 0),
            amgen_geom::Axis::Y => Vector::new(0, d),
        }
    }
}

/// Clamps a desired edge position between the shrink limit and the
/// current position (the edge only ever retreats, never advances).
/// `facing` is the sign of the edge's facing direction.
fn clamp_toward(cur: Coord, want: Coord, limit: Coord, facing: Coord) -> Coord {
    if facing > 0 {
        want.clamp(limit.min(cur), cur)
    } else {
        want.clamp(cur, limit.max(cur))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_db::RebuildKind;
    use amgen_geom::um;
    use amgen_prim::Primitives;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    fn stripe(t: &Tech, layer: &str, w: i64, h: i64, net: Option<&str>) -> LayoutObject {
        let l = t.layer(layer).unwrap();
        let mut obj = LayoutObject::new(format!("{layer}-stripe"));
        let mut s = Shape::new(l, Rect::new(0, 0, w, h));
        if let Some(n) = net {
            let id = obj.net(n);
            s = s.with_net(id);
        }
        obj.push(s);
        obj
    }

    #[test]
    fn first_object_is_copied_in_place() {
        let t = tech();
        let c = Compactor::new(&t);
        let mut main = LayoutObject::new("main");
        let obj = stripe(&t, "poly", 1_000, 5_000, None);
        let r = c
            .compact(&mut main, &obj, Dir::West, &CompactOptions::new())
            .unwrap();
        assert_eq!(r.offset, Vector::ZERO);
        assert_eq!(main.bbox(), Rect::new(0, 0, 1_000, 5_000));
    }

    #[test]
    fn empty_object_is_an_error() {
        let t = tech();
        let c = Compactor::new(&t);
        let mut main = LayoutObject::new("main");
        let obj = LayoutObject::new("empty");
        assert_eq!(
            c.compact(&mut main, &obj, Dir::East, &CompactOptions::new()),
            Err(CompactError::EmptyObject)
        );
    }

    #[test]
    fn east_attachment_respects_spacing() {
        let t = tech();
        let c = Compactor::new(&t);
        let poly = t.layer("poly").unwrap();
        let s = t.min_spacing(poly, poly).unwrap();
        let mut main = LayoutObject::new("main");
        let obj = stripe(&t, "poly", 1_000, 5_000, None);
        c.compact(&mut main, &obj, Dir::East, &CompactOptions::new())
            .unwrap();
        let r = c
            .compact(&mut main, &obj, Dir::East, &CompactOptions::new())
            .unwrap();
        assert!(r.rule_bound);
        assert_eq!(main.bbox().width(), 1_000 + s + 1_000);
        // The second stripe is east of the first.
        assert_eq!(main.shapes()[1].rect.x0, 1_000 + s);
    }

    #[test]
    fn all_four_sides_place_symmetrically() {
        let t = tech();
        let c = Compactor::new(&t);
        let poly = t.layer("poly").unwrap();
        let s = t.min_spacing(poly, poly).unwrap();
        for side in Dir::ALL {
            let mut main = LayoutObject::new("main");
            let obj = stripe(&t, "poly", 2_000, 2_000, None);
            c.compact(&mut main, &obj, side, &CompactOptions::new())
                .unwrap();
            c.compact(&mut main, &obj, side, &CompactOptions::new())
                .unwrap();
            let bb = main.bbox();
            let along = match side.axis() {
                amgen_geom::Axis::X => bb.width(),
                amgen_geom::Axis::Y => bb.height(),
            };
            assert_eq!(along, 2_000 + s + 2_000, "{side}");
            let perp = match side.axis() {
                amgen_geom::Axis::X => bb.height(),
                amgen_geom::Axis::Y => bb.width(),
            };
            assert_eq!(perp, 2_000, "{side}: no perpendicular drift");
        }
    }

    #[test]
    fn same_net_same_layer_stops_at_touch() {
        let t = tech();
        let c = Compactor::new(&t);
        let mut main = LayoutObject::new("main");
        let a = stripe(&t, "metal1", um(2), um(2), Some("vdd"));
        let b = stripe(&t, "metal1", um(2), um(2), Some("vdd"));
        c.compact(&mut main, &a, Dir::East, &CompactOptions::new())
            .unwrap();
        let r = c
            .compact(&mut main, &b, Dir::East, &CompactOptions::new())
            .unwrap();
        assert!(r.rule_bound);
        // Touching, not spaced: total width is exactly 4 um.
        assert_eq!(main.bbox().width(), um(4));
    }

    #[test]
    fn different_nets_keep_metal_spacing() {
        let t = tech();
        let c = Compactor::new(&t);
        let m1 = t.layer("metal1").unwrap();
        let s = t.min_spacing(m1, m1).unwrap();
        let mut main = LayoutObject::new("main");
        let a = stripe(&t, "metal1", um(2), um(2), Some("vdd"));
        let b = stripe(&t, "metal1", um(2), um(2), Some("gnd"));
        c.compact(&mut main, &a, Dir::East, &CompactOptions::new())
            .unwrap();
        c.compact(&mut main, &b, Dir::East, &CompactOptions::new())
            .unwrap();
        assert_eq!(main.bbox().width(), um(4) + s);
    }

    #[test]
    fn unrelated_layers_fall_back_to_abutment() {
        let t = tech();
        let c = Compactor::new(&t);
        // metal1 over poly: no spacing rule, no constraint.
        let mut main = LayoutObject::new("main");
        let a = stripe(&t, "poly", um(2), um(2), None);
        let b = stripe(&t, "metal1", um(2), um(2), None);
        c.compact(&mut main, &a, Dir::East, &CompactOptions::new())
            .unwrap();
        let r = c
            .compact(&mut main, &b, Dir::East, &CompactOptions::new())
            .unwrap();
        assert!(!r.rule_bound);
        assert_eq!(main.bbox().width(), um(4), "bounding boxes abut");
    }

    #[test]
    fn keepout_prevents_overlap_without_rule() {
        let t = tech();
        let c = Compactor::new(&t);
        let mut main = LayoutObject::new("main");
        let a = {
            let mut o = stripe(&t, "poly", um(2), um(2), None);
            o.shapes_mut()[0].keepout = true;
            o
        };
        let b = stripe(&t, "metal1", um(2), um(2), None);
        c.compact(&mut main, &a, Dir::East, &CompactOptions::new())
            .unwrap();
        let r = c
            .compact(&mut main, &b, Dir::East, &CompactOptions::new())
            .unwrap();
        assert!(r.rule_bound, "keepout makes the pair constraining");
        assert_eq!(main.bbox().width(), um(4));
        assert!(!main.shapes()[0].rect.overlaps(&main.shapes()[1].rect));
    }

    #[test]
    fn ignored_layer_imposes_no_constraint_and_bridges() {
        let t = tech();
        let c = Compactor::new(&t);
        let poly = t.layer("poly").unwrap();
        // Two poly stripes on the same (unset) potential with the layer
        // ignored: the object falls back to abutment and a bridge merges
        // them if a gap remains. Here abutment leaves no gap.
        let mut main = LayoutObject::new("main");
        let a = stripe(&t, "poly", um(2), um(2), None);
        let b = stripe(&t, "poly", um(2), um(2), None);
        let opts = CompactOptions::new().ignoring(poly);
        c.compact(&mut main, &a, Dir::East, &opts).unwrap();
        let r = c.compact(&mut main, &b, Dir::East, &opts).unwrap();
        assert!(!r.rule_bound);
        assert_eq!(main.bbox().width(), um(4));
        assert_eq!(r.bridges, 0, "abutting shapes need no bridge");
    }

    #[test]
    fn bridge_spans_a_real_gap() {
        let t = tech();
        let c = Compactor::new(&t);
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        // Main: poly stripe + metal1 keepout block standing proud to the
        // east, so the incoming object stops away from the poly.
        let mut main = LayoutObject::new("main");
        let pid = main.push(Shape::new(poly, Rect::new(0, 0, um(2), um(2))));
        main.push(Shape::new(m1, Rect::new(um(2), 0, um(4), um(2))).with_keepout());
        let _ = pid;
        // Object: poly stripe with a metal1 keepout of its own.
        let mut obj = LayoutObject::new("obj");
        obj.push(Shape::new(poly, Rect::new(0, 0, um(2), um(2))));
        obj.push(Shape::new(m1, Rect::new(0, 0, um(1), um(2))).with_keepout());
        let opts = CompactOptions::new().ignoring(poly);
        let r = c.compact(&mut main, &obj, Dir::East, &opts).unwrap();
        // The metal-metal spacing rule stops the object at
        // x = 4 um + spacing; the poly gap from 2 um to there is bridged.
        let stop = um(4) + t.min_spacing(m1, m1).unwrap();
        assert_eq!(r.bridges, 1);
        let bridge = main.shapes().last().unwrap();
        assert_eq!(bridge.layer, poly);
        assert_eq!(bridge.rect, Rect::new(um(2), 0, stop, um(2)));
    }

    /// Fig. 5b: a variable metal edge shrinks so the incoming object can
    /// come closer; the contact array is recalculated.
    #[test]
    fn variable_edge_shrinks_and_rebuilds() {
        let t = tech();
        let c = Compactor::new(&t);
        let prim = Primitives::new(&t);
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let ct = t.layer("contact").unwrap();

        // A vertical contact row with deliberately wide metal (4 um) whose
        // east metal edge is variable.
        let build_row = |variable: bool| -> LayoutObject {
            let mut row = LayoutObject::new("row");
            let p = prim
                .inbox(&mut row, poly, Some(um(4)), Some(um(10)))
                .unwrap();
            let m = prim.inbox(&mut row, m1, None, None).unwrap();
            let cuts = prim.array(&mut row, ct).unwrap();
            let mut members = vec![p, m];
            members.extend(cuts.iter().copied());
            row.add_group("row", members, Some(RebuildKind::ContactArray { cut: ct }));
            if variable {
                for i in [p, m] {
                    let e = row.shapes()[i].edges.with_variable(Dir::East);
                    row.shapes_mut()[i].edges = e;
                }
            }
            row
        };

        let probe = stripe(&t, "metal1", um(2), um(10), Some("sig"));

        let width_with = |variable: bool| -> (i64, CompactReport) {
            let mut main = LayoutObject::new("main");
            c.compact(
                &mut main,
                &build_row(variable),
                Dir::West,
                &CompactOptions::new(),
            )
            .unwrap();
            let r = c
                .compact(&mut main, &probe, Dir::East, &CompactOptions::new())
                .unwrap();
            (main.bbox().width(), r)
        };

        let (w_fixed, r_fixed) = width_with(false);
        let (w_var, r_var) = width_with(true);
        assert_eq!(r_fixed.shrunk_edges, 0);
        assert!(r_var.shrunk_edges > 0, "variable edges were moved");
        assert!(
            w_var < w_fixed,
            "variable edges must densify: {w_var} !< {w_fixed}"
        );
    }

    #[test]
    fn extra_clearance_widens_the_gap() {
        let t = tech();
        let c = Compactor::new(&t);
        let poly = t.layer("poly").unwrap();
        let s = t.min_spacing(poly, poly).unwrap();
        let mut main = LayoutObject::new("main");
        let obj = stripe(&t, "poly", 1_000, 5_000, None);
        c.compact(&mut main, &obj, Dir::East, &CompactOptions::new())
            .unwrap();
        c.compact(
            &mut main,
            &obj,
            Dir::East,
            &CompactOptions::new().with_extra_clearance(500),
        )
        .unwrap();
        assert_eq!(main.bbox().width(), 1_000 + s + 500 + 1_000);
    }

    #[test]
    fn cut_keeps_distance_from_foreign_conductor() {
        let t = tech();
        let c = Compactor::new(&t);
        let ct = t.layer("contact").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let mut main = LayoutObject::new("main");
        let mut a = LayoutObject::new("a");
        let na = a.net("x");
        a.push(Shape::new(m1, Rect::new(0, 0, um(2), um(2))).with_net(na));
        let mut b = LayoutObject::new("b");
        let nb = b.net("y");
        b.push(Shape::new(ct, Rect::new(0, 0, 1_000, 1_000)).with_net(nb));
        c.compact(&mut main, &a, Dir::East, &CompactOptions::new())
            .unwrap();
        let r = c
            .compact(&mut main, &b, Dir::East, &CompactOptions::new())
            .unwrap();
        assert!(r.rule_bound, "contact vs foreign metal constrains");
        let gap = main.shapes()[1]
            .rect
            .gap_along(&main.shapes()[0].rect, amgen_geom::Axis::X);
        assert!(gap >= t.min_spacing(ct, ct).unwrap());
    }

    #[test]
    fn perpendicular_clearance_lets_objects_pass() {
        let t = tech();
        let c = Compactor::new(&t);
        let poly = t.layer("poly").unwrap();
        let s = t.min_spacing(poly, poly).unwrap();
        let mut main = LayoutObject::new("main");
        // Main stripe at y in [0, 2 um].
        let a = stripe(&t, "poly", um(2), um(2), None);
        c.compact(&mut main, &a, Dir::East, &CompactOptions::new())
            .unwrap();
        // Object offset far north: its y-range clears the spacing, so it
        // slides past and falls back to bbox abutment.
        let mut b = LayoutObject::new("b");
        b.push(Shape::new(poly, Rect::new(0, um(2) + s, um(2), um(4) + s)));
        let r = c
            .compact(&mut main, &b, Dir::East, &CompactOptions::new())
            .unwrap();
        assert!(!r.rule_bound);
    }
}

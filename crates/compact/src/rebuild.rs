//! Group rebuild after variable-edge movement.
//!
//! Fig. 5b of the paper: after the compactor shrinks the metal of a
//! contact row, *"the contact row was rebuilt and the array of
//! contact-rectangles was recalculated"*.

use amgen_core::IntoGenCtx;
use amgen_db::{LayoutObject, RebuildKind, Shape};
use amgen_prim::Primitives;

/// Rebuilds the group at `gid` if it carries a rebuild rule.
///
/// For [`RebuildKind::ContactArray`] the group's shapes on the cut layer
/// are deleted and the maximal equidistant array is re-placed inside the
/// frame spanned by the group's remaining shapes. Returns `true` when the
/// geometry changed.
///
/// If the recomputed frame cannot hold a single cut, the group is left
/// untouched (the shrink limits of the engine should prevent this).
pub fn rebuild_group(ctx: impl IntoGenCtx, obj: &mut LayoutObject, gid: usize) -> bool {
    let ctx = ctx.into_gen_ctx();
    let Some(group) = obj.groups().get(gid) else {
        return false;
    };
    let Some(RebuildKind::ContactArray { cut }) = group.rebuild else {
        return false;
    };
    let mut span = ctx.span_fine(amgen_core::Stage::Compact, || {
        format!("rebuild:{}", group.name)
    });
    let member_indices: Vec<usize> = group.shapes.clone();
    let cut_indices: Vec<usize> = member_indices
        .iter()
        .copied()
        .filter(|&i| obj.shapes()[i].layer == cut)
        .collect();
    let net = cut_indices.first().and_then(|&i| obj.shapes()[i].net);
    let prim = Primitives::new(&ctx);
    let others: Vec<Shape> = member_indices
        .iter()
        .copied()
        .filter(|i| !cut_indices.contains(i))
        .map(|i| obj.shapes()[i])
        .collect();
    let Some(frame) = prim.frame_of_shapes(others.iter(), cut) else {
        return false;
    };
    let Ok(new_rects) = prim.array_in_frame(frame, cut) else {
        return false;
    };
    if new_rects.is_empty() {
        return false;
    }
    let old_rects: Vec<_> = cut_indices.iter().map(|&i| obj.shapes()[i].rect).collect();
    if old_rects == new_rects {
        return false;
    }
    // Replace the cuts. `remove_shapes` remaps the group indices; the
    // group id itself is stable.
    obj.remove_shapes(&cut_indices);
    let mut added = Vec::with_capacity(new_rects.len());
    for r in new_rects {
        let mut s = Shape::new(cut, r);
        if let Some(n) = net {
            s = s.with_net(n);
        }
        added.push(obj.push(s));
    }
    span.arg("cuts_before", old_rects.len());
    span.arg("cuts_after", added.len());
    obj.extend_group(amgen_db::GroupId::from_index(gid), added);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_db::RebuildKind;
    use amgen_geom::{um, Rect};
    use amgen_tech::Tech;

    /// Builds a horizontal contact row of the given metal width and
    /// returns (object, group id as usize).
    fn row(tech: &Tech, w: i64) -> (LayoutObject, usize) {
        let prim = Primitives::new(tech);
        let poly = tech.layer("poly").unwrap();
        let m1 = tech.layer("metal1").unwrap();
        let ct = tech.layer("contact").unwrap();
        let mut obj = LayoutObject::new("row");
        let a = prim.inbox(&mut obj, poly, Some(w), None).unwrap();
        let b = prim.inbox(&mut obj, m1, None, None).unwrap();
        let cuts = prim.array(&mut obj, ct).unwrap();
        let mut members = vec![a, b];
        members.extend(cuts);
        obj.add_group("row", members, Some(RebuildKind::ContactArray { cut: ct }));
        (obj, 0)
    }

    #[test]
    fn rebuild_without_change_is_a_noop() {
        let t = Tech::bicmos_1u();
        let (mut obj, gid) = row(&t, um(10));
        let before = obj.shapes().to_vec();
        assert!(!rebuild_group(&t, &mut obj, gid));
        assert_eq!(obj.shapes(), &before[..]);
    }

    #[test]
    fn rebuild_after_shrink_recalculates_contacts() {
        let t = Tech::bicmos_1u();
        let ct = t.layer("contact").unwrap();
        let (mut obj, gid) = row(&t, um(20));
        let n_before = obj.shapes_on(ct).count();
        assert!(n_before >= 5);
        // Shrink both conductor rects to half width (as the compactor
        // would after moving a variable edge).
        for s in obj.shapes_mut() {
            if t.kind(s.layer) != amgen_tech::LayerKind::Cut {
                s.rect = Rect::new(s.rect.x0, s.rect.y0, s.rect.x0 + um(10), s.rect.y1);
            }
        }
        assert!(rebuild_group(&t, &mut obj, gid));
        let n_after = obj.shapes_on(ct).count();
        assert!(n_after < n_before, "{n_after} < {n_before}");
        assert!(n_after >= 1);
        // All recalculated cuts are enclosed by the shrunk conductors.
        let poly = t.layer("poly").unwrap();
        let frame = Primitives::new(&t)
            .frame_of_shapes(obj.shapes_on(poly), ct)
            .unwrap();
        for s in obj.shapes_on(ct) {
            assert!(frame.contains_rect(&s.rect));
        }
        // The group's index list is consistent.
        for &i in &obj.groups()[gid].shapes {
            assert!(i < obj.len());
        }
    }

    #[test]
    fn rebuild_refuses_to_drop_all_contacts() {
        let t = Tech::bicmos_1u();
        let (mut obj, gid) = row(&t, um(10));
        // Shrink conductors to something hopeless (narrower than a cut).
        for s in obj.shapes_mut() {
            if t.kind(s.layer) != amgen_tech::LayerKind::Cut {
                s.rect = Rect::new(s.rect.x0, s.rect.y0, s.rect.x0 + 500, s.rect.y1);
            }
        }
        let before: Vec<_> = obj.shapes().to_vec();
        assert!(!rebuild_group(&t, &mut obj, gid));
        assert_eq!(obj.shapes(), &before[..], "group left untouched");
    }

    #[test]
    fn rebuild_preserves_cut_net() {
        let t = Tech::bicmos_1u();
        let ct = t.layer("contact").unwrap();
        let (mut obj, gid) = row(&t, um(12));
        let net = obj.net("sig");
        for s in obj.shapes_mut() {
            s.net = Some(net);
        }
        for s in obj.shapes_mut() {
            if t.kind(s.layer) != amgen_tech::LayerKind::Cut {
                s.rect = Rect::new(s.rect.x0, s.rect.y0, s.rect.x0 + um(6), s.rect.y1);
            }
        }
        assert!(rebuild_group(&t, &mut obj, gid));
        for s in obj.shapes_on(ct) {
            assert_eq!(s.net, Some(net));
        }
    }

    #[test]
    fn rebuild_on_group_without_rule_is_noop() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let mut obj = LayoutObject::new("x");
        let i = obj.push(Shape::new(poly, Rect::new(0, 0, 10, 10)));
        obj.add_group("plain", vec![i], None);
        assert!(!rebuild_group(&t, &mut obj, 0));
        assert!(!rebuild_group(&t, &mut obj, 99), "out of range is a noop");
    }
}

//! The successive compactor (§2.3 of the paper).
//!
//! *"Complex modules are constructed by compacting either geometric
//! primitives or hierarchically built objects to an existing structure.
//! In contrast to general compaction approaches, the compaction is done
//! successively by involving only one new object in each step."*
//!
//! [`Compactor::compact`] slides a [`LayoutObject`](amgen_db::LayoutObject) toward the growing
//! main structure from the given **attachment side** until the design
//! rules stop it, then folds it in. The features of the paper:
//!
//! * **Minimum-distance abutment** — every shape pair contributes a
//!   one-sided constraint derived from the spacing rules; the binding
//!   constraint places the object.
//! * **Same-potential merging** (Fig. 5a) — shape pairs on the same layer
//!   and potential are *"not considered during compaction, because they
//!   can be merged"*: the object stops at touch and the geometry connects.
//! * **Irrelevant layers** — the per-step ignore list
//!   ([`CompactOptions::ignore`]); shapes on these layers impose no
//!   constraints and are *"connected automatically after the compaction if
//!   they are on the same potential"* (bridging).
//! * **Variable edges** (Fig. 5b) — when the binding constraint involves a
//!   variable edge, the compactor moves it inward until a fixed edge
//!   binds, and **rebuilds** affected groups (contact arrays are
//!   recalculated).
//! * **Overlap keepouts** — `Shape::keepout` forbids overlap where the
//!   rules would allow it (parasitic-capacitance avoidance).
//!
//! # Direction convention
//!
//! The paper writes `compact(diffcon, WEST, "pdiff")`. Here the direction
//! names the **side of the main structure where the object attaches**: the
//! object approaches from the `WEST` and slides east until it rests against
//! the structure. This convention reproduces the paper's five-step MOS
//! differential pair (Figs. 6–7): three `WEST` steps yield
//! `contact row | gate | contact row | gate | contact row`.
//!
//! # Example
//!
//! ```
//! use amgen_compact::{CompactOptions, Compactor};
//! use amgen_db::{LayoutObject, Shape};
//! use amgen_geom::{Dir, Rect};
//! use amgen_tech::Tech;
//!
//! let tech = Tech::bicmos_1u();
//! let poly = tech.layer("poly").unwrap();
//! let c = Compactor::new(&tech);
//!
//! let mut main = LayoutObject::new("main");
//! let mut stripe = LayoutObject::new("stripe");
//! stripe.push(Shape::new(poly, Rect::new(0, 0, 1_000, 10_000)));
//!
//! c.compact(&mut main, &stripe, Dir::West, &CompactOptions::default()).unwrap();
//! c.compact(&mut main, &stripe, Dir::West, &CompactOptions::default()).unwrap();
//! // The second stripe sits exactly one poly-poly spacing west of the first.
//! let s = tech.min_spacing(poly, poly).unwrap();
//! assert_eq!(main.bbox().width(), 1_000 + s + 1_000);
//! ```

pub mod engine;
pub mod options;
pub mod rebuild;

pub use engine::{CompactError, CompactReport, Compactor};
pub use options::CompactOptions;

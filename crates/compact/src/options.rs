//! Per-step compaction options.

use amgen_geom::Coord;
use amgen_tech::Layer;

/// Options for one [`crate::Compactor::compact`] step.
#[derive(Debug, Clone)]
pub struct CompactOptions {
    /// Layers that are *"not relevant during this compaction step"* —
    /// shapes on them impose no constraints, and same-potential geometry
    /// on them is auto-connected after placement (the third argument of
    /// the paper's `compact()`).
    pub ignore: Vec<Layer>,

    /// Additional clearance added on top of every spacing rule.
    pub extra_clearance: Coord,

    /// Enables variable-edge shrinking (Fig. 5b). On by default.
    pub variable_edges: bool,

    /// Maximum shrink/rebuild iterations (safety valve).
    pub max_shrink_iters: usize,
}

impl Default for CompactOptions {
    fn default() -> CompactOptions {
        CompactOptions::new()
    }
}

impl CompactOptions {
    /// Default options: no ignored layers, variable edges enabled.
    pub fn new() -> CompactOptions {
        CompactOptions {
            ignore: Vec::new(),
            extra_clearance: 0,
            variable_edges: true,
            max_shrink_iters: 16,
        }
    }

    /// Adds an ignored layer.
    #[must_use]
    pub fn ignoring(mut self, layer: Layer) -> CompactOptions {
        self.ignore.push(layer);
        self
    }

    /// Sets the extra clearance.
    #[must_use]
    pub fn with_extra_clearance(mut self, c: Coord) -> CompactOptions {
        self.extra_clearance = c;
        self
    }

    /// Disables variable-edge shrinking (used by the Fig. 5 ablation).
    #[must_use]
    pub fn without_variable_edges(mut self) -> CompactOptions {
        self.variable_edges = false;
        self
    }

    /// True if the layer is on the ignore list.
    pub fn is_ignored(&self, layer: Layer) -> bool {
        self.ignore.contains(&layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_tech::Tech;

    #[test]
    fn default_is_empty_with_variable_edges() {
        let o = CompactOptions::default();
        assert!(o.ignore.is_empty());
        assert!(o.variable_edges);
        assert_eq!(o.extra_clearance, 0);
        assert!(o.max_shrink_iters > 0);
    }

    #[test]
    fn builder_methods() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let o = CompactOptions::new()
            .ignoring(poly)
            .with_extra_clearance(100)
            .without_variable_edges();
        assert!(o.is_ignored(poly));
        assert!(!o.is_ignored(m1));
        assert_eq!(o.extra_clearance, 100);
        assert!(!o.variable_edges);
    }
}

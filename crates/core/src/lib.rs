//! # amgen — an analog module generator environment
//!
//! A Rust reproduction of *"A Novel Analog Module Generator Environment"*
//! (M. Wolf, U. Kleine, B. J. Hosticka, DATE 1996): a complete system for
//! generating analog IC layout modules from parameterizable, technology
//! independent descriptions.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | subsystem | crate | paper section |
//! |---|---|---|
//! | geometry kernel (rect algebra, Fig. 1 subtraction) | [`geom`] | data model |
//! | technology / design rules, compiled [`RuleSet`](tech::RuleSet) kernel | [`tech`] | tech file |
//! | shared generation context ([`GenCtx`](core::GenCtx)) and stage metrics | [`core`] | infrastructure |
//! | structured event tracing, Chrome-trace export | [`trace`] | tooling |
//! | layout database (shapes, edges, nets, objects) | [`db`] | §2.2–2.3 |
//! | primitive shape functions (INBOX, ARRAY, ...) | [`prim`] | §2.2 |
//! | successive compactor (variable edges, auto-connect) | [`compact`] | §2.3 |
//! | order optimizer + rating function | [`opt`] | §2.4 |
//! | design rule checker (incl. latch-up, Fig. 1) | [`drc`] | §2.1 |
//! | connectivity & parasitic extraction | [`extract`] | §2.4, §3 |
//! | the layout description language | [`dsl`] | §2.1 |
//! | static analyzer for generator programs | [`lint`] | tooling |
//! | wiring routines (symmetric routing, Fig. 10) | [`route`] | §2, §3 |
//! | module library (contact rows → centroid pairs) | [`modgen`] | §2.5, §3 |
//! | SVG / GDSII export | [`export`] | tooling |
//! | the BiCMOS amplifier example | [`amp`] | §3, Figs. 8–10 |
//! | deterministic fault injection (chaos testing) | [`faults`] | tooling |
//! | multi-tenant generation server (wire protocol) | [`serve`] | tooling |
//!
//! # Quickstart
//!
//! ```
//! use amgen::prelude::*;
//!
//! // The paper's Fig. 2 module, written in the layout description
//! // language and generated in the built-in BiCMOS technology.
//! let tech = Tech::bicmos_1u();
//! let mut interp = Interpreter::new(&tech);
//! let out = interp
//!     .run(
//!         r#"
//! row = ContactRow(layer = "poly", W = 10)
//!
//! ENT ContactRow(layer, <W>, <L>)
//!   INBOX(layer, W, L)
//!   INBOX("metal1")
//!   ARRAY("contact")
//! "#,
//!     )
//!     .unwrap();
//! let row = &out["row"];
//! assert!(Drc::new(&tech).check(row).is_empty());
//! ```
//!
//! # The rule kernel and the generation context
//!
//! Every stage consumes design rules through a compiled
//! [`RuleSet`](tech::RuleSet) — dense pairwise tables, interned layer
//! handles, no strings or hashing in hot loops — carried in a shared
//! [`GenCtx`](core::GenCtx). Passing `&Tech` anywhere compiles a kernel
//! on the spot (the compatibility shim); for repeated generation build
//! the context once, share it (workers bump the `Arc`), and read the
//! per-stage counters afterwards:
//!
//! ```
//! use amgen::modgen::{contact_row, ContactRowParams};
//! use amgen::prelude::*;
//!
//! let tech = Tech::bicmos_1u();
//! let ctx = (&tech).into_gen_ctx(); // compile the kernel once
//! let poly = ctx.poly().unwrap(); // interned handle, no name lookup
//! for _ in 0..3 {
//!     contact_row(&ctx, poly, &ContactRowParams::new()).unwrap();
//! }
//! let m = ctx.snapshot();
//! assert!(m.stage_nanos(Stage::Modgen) > 0);
//! ```

pub use amgen_amp as amp;
pub use amgen_compact as compact;
pub use amgen_core as core;
pub use amgen_db as db;
pub use amgen_drc as drc;
pub use amgen_dsl as dsl;
pub use amgen_export as export;
pub use amgen_extract as extract;
pub use amgen_faults as faults;
pub use amgen_geom as geom;
pub use amgen_lint as lint;
pub use amgen_modgen as modgen;
pub use amgen_opt as opt;
pub use amgen_prim as prim;
pub use amgen_route as route;
pub use amgen_serve as serve;
pub use amgen_tech as tech;
pub use amgen_trace as trace;

/// The most common types, for glob import.
pub mod prelude {
    pub use amgen_compact::{CompactOptions, Compactor};
    pub use amgen_core::{
        Budget, CachedModule, CancelToken, CanonParam, FaultAction, FaultHook, FaultSite, GenCache,
        GenCtx, GenError, GenErrorKind, GenKey, GenOptions, GenResult, IntoGenCtx, Metrics,
        MetricsSnapshot, Resource, Stage,
    };
    pub use amgen_db::{LayoutObject, Port, Shape, ShapeRole};
    pub use amgen_drc::Drc;
    pub use amgen_dsl::Interpreter;
    pub use amgen_export::{render_svg, write_gds};
    pub use amgen_extract::Extractor;
    pub use amgen_faults::FaultPlan;
    pub use amgen_geom::{um, Dir, Point, Rect, Region, Vector};
    pub use amgen_opt::{OptResult, Optimizer, RatingWeights, SearchOptions, Step};
    pub use amgen_prim::Primitives;
    pub use amgen_route::Router;
    pub use amgen_tech::{Layer, RuleSet, Tech};
    pub use amgen_trace::{Detail, Trace, TraceSink};
}

//! Integration tests spanning the whole environment: the DSL sources of
//! the paper's figures versus the native module generators, export round
//! trips, and optimizer interplay.

use amgen::prelude::*;
use amgen::{dsl, export, modgen};

fn fig2_interp(tech: &Tech) -> Interpreter {
    let mut i = Interpreter::new(tech);
    i.load(dsl::stdlib::FIG2_CONTACT_ROW).unwrap();
    i.load(dsl::stdlib::FIG7_DIFF_PAIR).unwrap();
    i
}

/// The DSL `ContactRow` and the native generator produce the same
/// geometry for the same parameters (same footprint, same contacts).
#[test]
fn dsl_and_native_contact_rows_agree() {
    let tech = Tech::bicmos_1u();
    let mut i = fig2_interp(&tech);
    let poly = tech.layer("poly").unwrap();
    let ct = tech.layer("contact").unwrap();
    for w_um in [4.0, 10.0, 16.0] {
        let out = i
            .run(&format!("row = ContactRow(layer = \"poly\", W = {w_um})\n"))
            .unwrap();
        let native = modgen::contact_row(
            &tech,
            poly,
            &modgen::ContactRowParams::new().with_w((w_um * 1_000.0) as i64),
        )
        .unwrap();
        assert_eq!(
            out["row"].bbox().width(),
            native.bbox().width(),
            "W = {w_um}"
        );
        assert_eq!(out["row"].bbox().height(), native.bbox().height());
        assert_eq!(
            out["row"].shapes_on(ct).count(),
            native.shapes_on(ct).count()
        );
    }
}

/// The DSL diff pair and the native one agree structurally.
#[test]
fn dsl_and_native_diff_pairs_agree_structurally() {
    let tech = Tech::bicmos_1u();
    let mut i = fig2_interp(&tech);
    let out = i.run("diff = DiffPair(W = 10, L = 2)\n").unwrap();
    let native = modgen::diffpair::diff_pair(
        &tech,
        &modgen::diffpair::DiffPairParams::new(modgen::MosType::P)
            .with_w(um(10))
            .with_l(um(2)),
    )
    .unwrap();
    let poly = tech.layer("poly").unwrap();
    let stripes = |o: &LayoutObject| {
        o.shapes_on(poly)
            .filter(|s| s.rect.height() > 3 * s.rect.width())
            .count()
    };
    assert_eq!(stripes(&out["diff"]), 2);
    assert_eq!(stripes(&native), 2);
    // Both are DRC-clean in the same deck.
    let d = Drc::new(&tech);
    assert!(d.check_spacing(&out["diff"]).is_empty());
    assert!(d.check_spacing(&native).is_empty());
}

/// Generated modules survive a GDSII round trip structurally.
#[test]
fn modules_export_to_gds_and_back() {
    let tech = Tech::bicmos_1u();
    let pair = modgen::diffpair::diff_pair(
        &tech,
        &modgen::diffpair::DiffPairParams::new(modgen::MosType::P).with_w(um(8)),
    )
    .unwrap();
    let bytes = write_gds(&tech, &pair);
    let summary = export::parse_gds_summary(&bytes).unwrap();
    assert_eq!(summary.boundaries, pair.len());
    let bb = pair.bbox();
    assert_eq!(summary.bbox, (bb.x0, bb.y0, bb.x1, bb.y1));
}

/// Every library module renders to SVG.
#[test]
fn modules_render_to_svg() {
    let tech = Tech::bicmos_1u();
    let row = modgen::contact_row(
        &tech,
        tech.layer("pdiff").unwrap(),
        &modgen::ContactRowParams::new().with_w(um(10)),
    )
    .unwrap();
    let svg = render_svg(&tech, &row);
    assert!(svg.matches("<rect ").count() > row.len());
}

/// The optimizer's variant selection works on DSL-produced variants.
#[test]
fn optimizer_selects_among_dsl_variants() {
    let tech = Tech::bicmos_1u();
    let mut i = Interpreter::new(&tech);
    i.load(dsl::stdlib::VARIANT_ROW).unwrap();
    let variants = i
        .eval_entity_variants(
            "FlexRow",
            &[
                ("layer", dsl::Value::Str("poly".into())),
                ("S", dsl::Value::Num(12.0)),
            ],
        )
        .unwrap();
    let opt = Optimizer::new(&tech, RatingWeights::default());
    let (best, rating) = opt.select_variant(&variants).unwrap();
    assert!(best < variants.len());
    assert!(rating.score > 0.0);
}

/// A module generated in one technology ports to the other by re-running
/// the same source — the paper's central promise.
#[test]
fn technology_independence_end_to_end() {
    for tech in [Tech::bicmos_1u(), Tech::cmos_08()] {
        let mut i = fig2_interp(&tech);
        let out = i.run("diff = DiffPair(W = 8, L = 1)\n").unwrap();
        let v = Drc::new(&tech).check_spacing(&out["diff"]);
        assert!(v.is_empty(), "{}: {v:?}", tech.name());
    }
}

/// The full amplifier example builds, checks clean and exports.
#[test]
fn amplifier_end_to_end() {
    let tech = Tech::bicmos_1u();
    let (amp, report) = amgen::amp::build_amplifier(&tech).unwrap();
    assert_eq!(report.shorts, 0);
    assert!(report.latchup_clean);
    let bytes = write_gds(&tech, &amp);
    let summary = export::parse_gds_summary(&bytes).unwrap();
    assert!(summary.boundaries > 500);
}

/// Parasitic extraction distinguishes the centroid pair's matched drains:
/// by symmetry their capacitances should be close.
#[test]
fn centroid_drain_capacitances_match() {
    let tech = Tech::bicmos_1u();
    let m = modgen::centroid::centroid_diff_pair(
        &tech,
        &modgen::centroid::CentroidParams::paper(modgen::MosType::N).with_w(um(6)),
    )
    .unwrap();
    let nets = Extractor::new(&tech).parasitics(&m);
    let cap = |name: &str| {
        nets.iter()
            .find(|n| n.name.as_deref() == Some(name))
            .map(|n| n.cap_af)
            .unwrap_or(0.0)
    };
    let (c1, c2) = (cap("d1"), cap("d2"));
    assert!(c1 > 0.0 && c2 > 0.0);
    let ratio = c1.max(c2) / c1.min(c2);
    assert!(ratio < 1.15, "matched drains: {c1} vs {c2}");
}

//! Internal module wiring.
//!
//! *"Several routing routines support the internal wiring of the
//! modules."* The paper's showcase is the differential pair of Fig. 10,
//! whose *"wiring is fully symmetrical and every net has identical
//! crossings"*.
//!
//! This crate provides the wiring routines the module generators use:
//!
//! * [`Router::straight`] — connect two landings whose projections
//!   overlap with one wire,
//! * [`Router::l_route`] — a horizontal + vertical dogleg with the angle
//!   adaptor of §2.2 patching the corner,
//! * [`Router::z_route`] — a three-segment jog,
//! * [`Router::via_stack`] — a cut with both landing pads, rule-sized,
//! * [`Router::route_mirrored`] — instantiate a path and its mirror image
//!   about a symmetry axis (matched-pair wiring),
//! * [`Router::crossing_counts`] — the per-net crossing audit used to
//!   verify the "identical crossings" property.

use amgen_core::{FaultSite, GenCtx, GenError, IntoGenCtx, Stage};
use amgen_db::{LayoutObject, NetId, Shape};
use amgen_geom::{Coord, Point, Rect};
use amgen_prim::Primitives;
use amgen_tech::{Layer, LayerKind, RuleSet};

/// Errors from the wiring routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// Budget exhaustion, cancellation or an injected fault, from the
    /// shared generation context.
    Gen(GenError),
    /// The two landings share no projection overlap; a straight wire
    /// cannot connect them.
    NoOverlap,
    /// A route was requested on a non-conductor layer.
    NotAConductor(String),
    /// The via stack's cut layer does not connect the two given layers.
    NotConnectable {
        /// Cut layer name.
        cut: String,
        /// First conductor.
        a: String,
        /// Second conductor.
        b: String,
    },
    /// Underlying primitive failure (corner patch etc.).
    Prim(String),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Gen(e) => write!(f, "{e}"),
            RouteError::NoOverlap => {
                write!(
                    f,
                    "landings share no projection overlap for a straight wire"
                )
            }
            RouteError::NotAConductor(l) => write!(f, "layer `{l}` is not a conductor"),
            RouteError::NotConnectable { cut, a, b } => {
                write!(f, "cut `{cut}` does not connect `{a}` and `{b}`")
            }
            RouteError::Prim(m) => write!(f, "primitive failure: {m}"),
        }
    }
}

impl std::error::Error for RouteError {}

impl From<GenError> for RouteError {
    fn from(e: GenError) -> RouteError {
        RouteError::Gen(e)
    }
}

impl From<RouteError> for GenError {
    /// Unifies routing failures under the `amgen-core` error: typed
    /// robustness errors pass through, stage-specific ones are wrapped
    /// with [`Stage::Route`] context.
    fn from(e: RouteError) -> GenError {
        match e {
            RouteError::Gen(g) => g,
            other => GenError::stage_msg(Stage::Route, other.to_string()),
        }
    }
}

/// The wiring routines, bound to one generation context.
#[derive(Debug, Clone)]
pub struct Router {
    ctx: GenCtx,
}

impl Router {
    /// Binds the router to a generation context (or anything that
    /// converts into one, e.g. `&Tech`).
    pub fn new(ctx: impl IntoGenCtx) -> Router {
        Router {
            ctx: ctx.into_gen_ctx(),
        }
    }

    /// The shared generation context.
    pub fn ctx(&self) -> &GenCtx {
        &self.ctx
    }

    /// The compiled rule kernel.
    pub fn rules(&self) -> &RuleSet {
        &self.ctx
    }

    /// Robustness probe shared by the public routines: cancellation /
    /// deadline checkpoint plus the route-call fault-injection site.
    fn probe(&self, routine: &'static str) -> Result<(), RouteError> {
        self.ctx.checkpoint(Stage::Route)?;
        self.ctx.fault_check(FaultSite::RouteCall, routine)?;
        Ok(())
    }

    fn conductor(&self, layer: Layer) -> Result<(), RouteError> {
        if self.ctx.kind(layer).is_conductor() {
            Ok(())
        } else {
            Err(RouteError::NotAConductor(
                self.ctx.layer_name(layer).to_string(),
            ))
        }
    }

    fn wire_width(&self, layer: Layer, width: Option<Coord>) -> Coord {
        width
            .unwrap_or_else(|| self.ctx.min_width(layer))
            .max(self.ctx.min_width(layer))
    }

    /// Connects two landings with one straight wire on `layer`.
    ///
    /// If the x-projections overlap by at least the wire width, a vertical
    /// wire is drawn through the overlap; otherwise, if the y-projections
    /// do, a horizontal wire. Returns the wire's shape index.
    pub fn straight(
        &self,
        obj: &mut LayoutObject,
        layer: Layer,
        from: Rect,
        to: Rect,
        width: Option<Coord>,
        net: Option<NetId>,
    ) -> Result<usize, RouteError> {
        self.probe("straight")?;
        let t0 = std::time::Instant::now();
        let _span = self.ctx.span(Stage::Route, || "straight");
        self.conductor(layer)?;
        let w = self.wire_width(layer, width);
        let xo = from.x_range().intersection(&to.x_range());
        let yo = from.y_range().intersection(&to.y_range());
        let rect = if let Some(x) = xo.filter(|x| x.len() >= w) {
            let cx = x.lo + x.len() / 2;
            let y0 = from.y1.min(to.y1).min(from.y0.min(to.y0));
            let y1 = from.y1.max(to.y1).max(from.y0.max(to.y0));
            Rect::new(cx - w / 2, y0, cx - w / 2 + w, y1)
        } else if let Some(y) = yo.filter(|y| y.len() >= w) {
            let cy = y.lo + y.len() / 2;
            let x0 = from.x0.min(to.x0);
            let x1 = from.x1.max(to.x1);
            Rect::new(x0, cy - w / 2, x1, cy - w / 2 + w)
        } else {
            return Err(RouteError::NoOverlap);
        };
        let mut s = Shape::new(layer, rect);
        if let Some(n) = net {
            s = s.with_net(n);
        }
        let i = obj.push(s);
        self.ctx
            .metrics
            .add_stage_nanos(Stage::Route, t0.elapsed().as_nanos() as u64);
        Ok(i)
    }

    /// Routes an L from point `a` to point `b`: a horizontal segment at
    /// `a.y`, then a vertical segment at `b.x`, with an angle adaptor on
    /// the corner. Returns the three shape indices (h, v, corner).
    pub fn l_route(
        &self,
        obj: &mut LayoutObject,
        layer: Layer,
        a: Point,
        b: Point,
        width: Option<Coord>,
        net: Option<NetId>,
    ) -> Result<[usize; 3], RouteError> {
        self.probe("l_route")?;
        let t0 = std::time::Instant::now();
        let _span = self.ctx.span(Stage::Route, || "l_route");
        self.conductor(layer)?;
        let w = self.wire_width(layer, width);
        let h = Rect::new(a.x.min(b.x), a.y - w / 2, a.x.max(b.x), a.y - w / 2 + w);
        let v = Rect::new(b.x - w / 2, a.y.min(b.y), b.x - w / 2 + w, a.y.max(b.y));
        let prim = Primitives::new(&self.ctx);
        let hi = obj.push(with_net(Shape::new(layer, h), net));
        let vi = obj.push(with_net(Shape::new(layer, v), net));
        let ci = prim
            .angle_adaptor(obj, layer, h, v, net)
            .map_err(|e| RouteError::Prim(e.to_string()))?;
        self.ctx
            .metrics
            .add_stage_nanos(Stage::Route, t0.elapsed().as_nanos() as u64);
        Ok([hi, vi, ci])
    }

    /// Routes a Z: horizontal at `a.y` to `mid_x`, vertical to `b.y`,
    /// horizontal to `b.x`. Returns the shape indices (3 wires and 2
    /// corners).
    #[allow(clippy::too_many_arguments)]
    pub fn z_route(
        &self,
        obj: &mut LayoutObject,
        layer: Layer,
        a: Point,
        b: Point,
        mid_x: Coord,
        width: Option<Coord>,
        net: Option<NetId>,
    ) -> Result<Vec<usize>, RouteError> {
        self.probe("z_route")?;
        let t0 = std::time::Instant::now();
        let _span = self.ctx.span(Stage::Route, || "z_route");
        self.conductor(layer)?;
        let w = self.wire_width(layer, width);
        let h1 = Rect::new(a.x.min(mid_x), a.y - w / 2, a.x.max(mid_x), a.y - w / 2 + w);
        let v = Rect::new(mid_x - w / 2, a.y.min(b.y), mid_x - w / 2 + w, a.y.max(b.y));
        let h2 = Rect::new(mid_x.min(b.x), b.y - w / 2, mid_x.max(b.x), b.y - w / 2 + w);
        let prim = Primitives::new(&self.ctx);
        let mut out = vec![
            obj.push(with_net(Shape::new(layer, h1), net)),
            obj.push(with_net(Shape::new(layer, v), net)),
            obj.push(with_net(Shape::new(layer, h2), net)),
        ];
        out.push(
            prim.angle_adaptor(obj, layer, h1, v, net)
                .map_err(|e| RouteError::Prim(e.to_string()))?,
        );
        out.push(
            prim.angle_adaptor(obj, layer, h2, v, net)
                .map_err(|e| RouteError::Prim(e.to_string()))?,
        );
        self.ctx
            .metrics
            .add_stage_nanos(Stage::Route, t0.elapsed().as_nanos() as u64);
        Ok(out)
    }

    /// Places a via stack centred at `at`: the cut plus rule-sized landing
    /// pads on both conductor layers. Returns (pad_a, cut, pad_b) indices.
    pub fn via_stack(
        &self,
        obj: &mut LayoutObject,
        cut: Layer,
        a: Layer,
        b: Layer,
        at: Point,
        net: Option<NetId>,
    ) -> Result<[usize; 3], RouteError> {
        self.probe("via_stack")?;
        let t0 = std::time::Instant::now();
        let _span = self.ctx.span(Stage::Route, || "via_stack");
        if self.ctx.kind(cut) != LayerKind::Cut || !self.ctx.connects(cut, a, b) {
            return Err(RouteError::NotConnectable {
                cut: self.ctx.layer_name(cut).to_string(),
                a: self.ctx.layer_name(a).to_string(),
                b: self.ctx.layer_name(b).to_string(),
            });
        }
        let cs = self
            .ctx
            .cut_size(cut)
            .map_err(|e| RouteError::Prim(e.to_string()))?;
        let cut_rect = Rect::centered_at(at, cs, cs);
        let pad = |layer: Layer| -> Rect {
            let e = self.ctx.enclosure(layer, cut);
            let side = (cs + 2 * e).max(self.ctx.min_width(layer));
            Rect::centered_at(at, side, side)
        };
        let ia = obj.push(with_net(Shape::new(a, pad(a)), net));
        let ic = obj.push(with_net(Shape::new(cut, cut_rect), net));
        let ib = obj.push(with_net(Shape::new(b, pad(b)), net));
        self.ctx
            .metrics
            .add_stage_nanos(Stage::Route, t0.elapsed().as_nanos() as u64);
        Ok([ia, ic, ib])
    }

    /// Builds a vertical **underpass**: the wire dives from `upper` down
    /// through a via to `lower`, runs on `lower` from `y_from` to `y_to`
    /// at column `x`, and rises back through a second via — the structure
    /// that lets a riser cross a same-layer bus (each crossing the paper
    /// counts is exactly one such layer change). Returns the shape count
    /// added.
    #[allow(clippy::too_many_arguments)]
    pub fn underpass_v(
        &self,
        obj: &mut LayoutObject,
        cut: Layer,
        lower: Layer,
        upper: Layer,
        x: Coord,
        y_from: Coord,
        y_to: Coord,
        net: Option<NetId>,
    ) -> Result<usize, RouteError> {
        self.probe("underpass_v")?;
        let _span = self.ctx.span(Stage::Route, || "underpass_v");
        let before = obj.len();
        self.via_stack(obj, cut, lower, upper, Point::new(x, y_from), net)?;
        self.via_stack(obj, cut, lower, upper, Point::new(x, y_to), net)?;
        let w = self.ctx.min_width(lower);
        let rect = Rect::new(x - w / 2, y_from.min(y_to), x - w / 2 + w, y_from.max(y_to));
        obj.push(with_net(Shape::new(lower, rect), net));
        Ok(obj.len() - before)
    }

    /// Instantiates a wire path and its mirror image about the vertical
    /// line `x = axis_x` — the matched-pair wiring of Fig. 10. The left
    /// copy carries `net_l`, the right copy `net_r`. Returns the number of
    /// shapes added per side.
    pub fn route_mirrored(
        &self,
        obj: &mut LayoutObject,
        layer: Layer,
        path: &[Rect],
        axis_x: Coord,
        net_l: NetId,
        net_r: NetId,
    ) -> Result<usize, RouteError> {
        self.probe("route_mirrored")?;
        let _span = self.ctx.span(Stage::Route, || "route_mirrored");
        self.conductor(layer)?;
        for &r in path {
            obj.push(Shape::new(layer, r).with_net(net_l));
        }
        for &r in path {
            let m = Rect::new(2 * axis_x - r.x1, r.y0, 2 * axis_x - r.x0, r.y1);
            obj.push(Shape::new(layer, m).with_net(net_r));
        }
        Ok(path.len())
    }

    /// Verifies mirror symmetry of a matched net pair about the vertical
    /// line `x = axis_x`: every shape on `net_a` must have an exact
    /// mirrored twin on `net_b` (same layer), and vice versa. Returns the
    /// offending rectangles (empty = fully symmetric) — the audit behind
    /// the paper's *"the wiring is fully symmetrical"*.
    pub fn check_mirror_pairs(
        &self,
        obj: &LayoutObject,
        axis_x: Coord,
        net_a: &str,
        net_b: &str,
    ) -> Vec<Rect> {
        let (Some(a), Some(b)) = (obj.find_net(net_a), obj.find_net(net_b)) else {
            return Vec::new();
        };
        let on = |net| -> Vec<(Layer, Rect)> {
            obj.shapes()
                .iter()
                .filter(|s| s.net == Some(net))
                .map(|s| (s.layer, s.rect))
                .collect()
        };
        let sa = on(a);
        let sb = on(b);
        let mirror = |r: &Rect| Rect::new(2 * axis_x - r.x1, r.y0, 2 * axis_x - r.x0, r.y1);
        let mut bad = Vec::new();
        for (layer, r) in &sa {
            let m = mirror(r);
            if !sb.iter().any(|(l2, r2)| l2 == layer && *r2 == m) {
                bad.push(*r);
            }
        }
        for (layer, r) in &sb {
            let m = mirror(r);
            if !sa.iter().any(|(l2, r2)| l2 == layer && *r2 == m) {
                bad.push(*r);
            }
        }
        bad
    }

    /// Counts, for every declared net, how many times its wires cross
    /// wires of *other* nets on *different* conductor layers (rectangle
    /// overlap on distinct conductor layers = one crossing). This is the
    /// audit behind the paper's *"every net has identical crossings"*.
    pub fn crossing_counts(&self, obj: &LayoutObject) -> Vec<(String, usize)> {
        let shapes = obj.shapes();
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for name in obj.net_names() {
            counts.insert(name.clone(), 0);
        }
        for (i, a) in shapes.iter().enumerate() {
            for b in &shapes[i + 1..] {
                let (Some(na), Some(nb)) = (a.net, b.net) else {
                    continue;
                };
                if na == nb
                    || a.layer == b.layer
                    || !self.ctx.kind(a.layer).is_conductor()
                    || !self.ctx.kind(b.layer).is_conductor()
                    || !a.rect.overlaps(&b.rect)
                {
                    continue;
                }
                *counts.entry(obj.net_name(na).to_string()).or_default() += 1;
                *counts.entry(obj.net_name(nb).to_string()).or_default() += 1;
            }
        }
        counts.into_iter().collect()
    }
}

fn with_net(s: Shape, net: Option<NetId>) -> Shape {
    match net {
        Some(n) => s.with_net(n),
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    #[test]
    fn straight_vertical_wire_through_x_overlap() {
        let t = tech();
        let r = Router::new(&t);
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("w");
        let a = Rect::new(0, 0, um(3), um(1));
        let b = Rect::new(um(1), um(5), um(4), um(6));
        let i = r.straight(&mut obj, m1, a, b, None, None).unwrap();
        let w = obj.shapes()[i].rect;
        assert!(w.width() >= t.min_width(m1));
        assert!(w.overlaps(&a) && w.overlaps(&b));
    }

    #[test]
    fn straight_horizontal_wire_through_y_overlap() {
        let t = tech();
        let r = Router::new(&t);
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("w");
        let a = Rect::new(0, 0, um(1), um(3));
        let b = Rect::new(um(5), um(1), um(6), um(4));
        let i = r.straight(&mut obj, m1, a, b, None, None).unwrap();
        let w = obj.shapes()[i].rect;
        assert!(w.height() >= t.min_width(m1));
        assert!(w.overlaps(&a) && w.overlaps(&b));
    }

    #[test]
    fn straight_fails_without_overlap() {
        let t = tech();
        let r = Router::new(&t);
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("w");
        let a = Rect::new(0, 0, um(1), um(1));
        let b = Rect::new(um(5), um(5), um(6), um(6));
        assert_eq!(
            r.straight(&mut obj, m1, a, b, None, None),
            Err(RouteError::NoOverlap)
        );
    }

    #[test]
    fn straight_rejects_well_layer() {
        let t = tech();
        let r = Router::new(&t);
        let nwell = t.layer("nwell").unwrap();
        let mut obj = LayoutObject::new("w");
        let a = Rect::new(0, 0, um(3), um(1));
        assert!(matches!(
            r.straight(&mut obj, nwell, a, a, None, None),
            Err(RouteError::NotAConductor(_))
        ));
    }

    #[test]
    fn l_route_connects_and_patches_corner() {
        let t = tech();
        let r = Router::new(&t);
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("w");
        let [h, v, c] = r
            .l_route(
                &mut obj,
                m1,
                Point::new(0, 0),
                Point::new(um(10), um(8)),
                None,
                None,
            )
            .unwrap();
        let (hr, vr, cr) = (
            obj.shapes()[h].rect,
            obj.shapes()[v].rect,
            obj.shapes()[c].rect,
        );
        assert!(cr.overlaps(&hr) || cr.abuts(&hr));
        assert!(cr.overlaps(&vr) || cr.abuts(&vr));
        // The path is electrically continuous.
        let e = amgen_extract::Extractor::new(&t);
        assert_eq!(e.connectivity(&obj).len(), 1);
    }

    #[test]
    fn z_route_is_continuous() {
        let t = tech();
        let r = Router::new(&t);
        let m2 = t.layer("metal2").unwrap();
        let mut obj = LayoutObject::new("w");
        r.z_route(
            &mut obj,
            m2,
            Point::new(0, 0),
            Point::new(um(20), um(10)),
            um(8),
            Some(um(2)),
            None,
        )
        .unwrap();
        let e = amgen_extract::Extractor::new(&t);
        assert_eq!(e.connectivity(&obj).len(), 1);
        // Requested wide wires.
        for s in obj.shapes() {
            assert!(s.rect.width().min(s.rect.height()) >= um(2));
        }
    }

    #[test]
    fn via_stack_connects_the_two_metals() {
        let t = tech();
        let r = Router::new(&t);
        let m1 = t.layer("metal1").unwrap();
        let m2 = t.layer("metal2").unwrap();
        let via = t.layer("via1").unwrap();
        let mut obj = LayoutObject::new("v");
        let [pa, ic, pb] = r
            .via_stack(&mut obj, via, m1, m2, Point::new(um(5), um(5)), None)
            .unwrap();
        let cut = obj.shapes()[ic].rect;
        let enc1 = t.enclosure(m1, via);
        assert!(obj.shapes()[pa].rect.inflated(-enc1).contains_rect(&cut));
        assert!(obj.shapes()[pb].rect.contains_rect(&cut));
        let e = amgen_extract::Extractor::new(&t);
        assert_eq!(e.connectivity(&obj).len(), 1);
    }

    #[test]
    fn via_stack_rejects_wrong_layers() {
        let t = tech();
        let r = Router::new(&t);
        let poly = t.layer("poly").unwrap();
        let m2 = t.layer("metal2").unwrap();
        let via = t.layer("via1").unwrap();
        let mut obj = LayoutObject::new("v");
        assert!(matches!(
            r.via_stack(&mut obj, via, poly, m2, Point::ORIGIN, None),
            Err(RouteError::NotConnectable { .. })
        ));
    }

    #[test]
    fn underpass_is_continuous_and_stays_on_layers() {
        let t = tech();
        let r = Router::new(&t);
        let m1 = t.layer("metal1").unwrap();
        let m2 = t.layer("metal2").unwrap();
        let via = t.layer("via1").unwrap();
        let mut obj = LayoutObject::new("u");
        // Stubs on metal2 at both ends, underpass in between.
        obj.push(Shape::new(m2, Rect::new(um(4), 0, um(6), um(2))));
        obj.push(Shape::new(m2, Rect::new(um(4), um(10), um(6), um(12))));
        r.underpass_v(&mut obj, via, m1, m2, um(5), um(1), um(11), None)
            .unwrap();
        let e = amgen_extract::Extractor::new(&t);
        assert_eq!(e.connectivity(&obj).len(), 1, "ends are connected");
        // The crossing span between the vias is metal1 only.
        let m1_span = obj.bbox_on(m1);
        assert!(m1_span.y0 <= um(1) && m1_span.y1 >= um(11));
    }

    #[test]
    fn mirrored_route_is_geometrically_symmetric() {
        let t = tech();
        let r = Router::new(&t);
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("pair");
        let nl = obj.net("out_l");
        let nr = obj.net("out_r");
        let path = [
            Rect::new(0, 0, um(4), um(1)),
            Rect::new(um(3), 0, um(4), um(6)),
        ];
        let axis = um(10);
        r.route_mirrored(&mut obj, m1, &path, axis, nl, nr).unwrap();
        assert_eq!(obj.len(), 4);
        // Every left shape has an exact mirror twin.
        for i in 0..path.len() {
            let l = obj.shapes()[i].rect;
            let rr = obj.shapes()[i + path.len()].rect;
            assert_eq!(rr, Rect::new(2 * axis - l.x1, l.y0, 2 * axis - l.x0, l.y1));
        }
    }

    #[test]
    fn mirror_audit_passes_for_mirrored_routes_and_catches_asymmetry() {
        let t = tech();
        let r = Router::new(&t);
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("pair");
        let nl = obj.net("l");
        let nr = obj.net("r");
        let axis = um(10);
        let path = [
            Rect::new(0, 0, um(4), um(1)),
            Rect::new(um(3), 0, um(4), um(6)),
        ];
        r.route_mirrored(&mut obj, m1, &path, axis, nl, nr).unwrap();
        assert!(r.check_mirror_pairs(&obj, axis, "l", "r").is_empty());
        // Break the symmetry: one extra shape on l only.
        obj.push(Shape::new(m1, Rect::new(0, um(8), um(2), um(9))).with_net(nl));
        let bad = r.check_mirror_pairs(&obj, axis, "l", "r");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0], Rect::new(0, um(8), um(2), um(9)));
    }

    #[test]
    fn crossing_counts_are_identical_for_mirrored_nets() {
        let t = tech();
        let r = Router::new(&t);
        let m1 = t.layer("metal1").unwrap();
        let m2 = t.layer("metal2").unwrap();
        let mut obj = LayoutObject::new("pair");
        let nl = obj.net("l");
        let nr = obj.net("r");
        let nx = obj.net("bus");
        // A metal2 bus crossing the module horizontally.
        obj.push(Shape::new(m2, Rect::new(0, um(2), um(20), um(4))).with_net(nx));
        // Mirrored vertical metal1 wires crossing the bus.
        let path = [Rect::new(um(2), 0, um(3), um(8))];
        r.route_mirrored(&mut obj, m1, &path, um(10), nl, nr)
            .unwrap();
        let counts = r.crossing_counts(&obj);
        let get = |n: &str| counts.iter().find(|(x, _)| x == n).unwrap().1;
        assert_eq!(get("l"), get("r"), "identical crossings per net");
        assert_eq!(get("l"), 1);
        assert_eq!(get("bus"), 2);
    }
}

//! Property-based soundness gate for the certification pass: whenever
//! the abstract interpreter certifies a finite whole-run fuel bound for
//! a generated program, executing that program never consumes more —
//! and a budget sized off the certificate is never exhausted.
//!
//! Unlike the interpreter's fuel properties (`fuel_props.rs` in the DSL
//! crate), whose fully random programs nearly always carry lint errors,
//! these generators build programs that are well-formed *by
//! construction* — numeric expressions affine in the one entity
//! parameter, loops counting from 1, guarded decreasing self-recursion
//! — so the bulk of the cases actually carry a finite certificate to
//! falsify. Cases the pass refuses to bound (E501/W503) are skipped;
//! the property constrains the claims, not the coverage.

use amgen_core::{Budget, IntoGenCtx};
use amgen_dsl::ast::{strip_spans, Program};
use amgen_dsl::costmodel::DEFAULT_MAX_VARIANTS;
use amgen_dsl::pretty::print_program;
use amgen_dsl::{DslError, Interpreter};
use amgen_lint::Linter;
use amgen_tech::Tech;
use proptest::prelude::*;

mod gen {
    use amgen_dsl::ast::{BinOp, Call, Entity, Expr, Param, Program, Stmt};
    use amgen_dsl::span::Span;
    use proptest::prelude::*;

    fn num(k: i64) -> Expr {
        Expr::Number(k as f64, Span::NONE)
    }

    fn var(name: &str) -> Expr {
        Expr::Var(name.to_string(), Span::NONE)
    }

    fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span: Span::NONE,
        }
    }

    /// Identifiers that can never collide with the entity parameter `n`.
    fn ident() -> impl Strategy<Value = String> {
        "[a-m][a-z0-9_]{0,5}".prop_map(|s| s)
    }

    /// Numeric expressions affine in `n`: `k`, `n - k`, `k + c*n`, and —
    /// occasionally — the non-affine `n * n` so the W503 path gets
    /// exercised too.
    fn arb_affine() -> impl Strategy<Value = Expr> {
        (0i64..12, 0i64..4, 0i64..8).prop_map(|(k, c, form)| match form {
            0..=2 => num(k),
            3 => bin(BinOp::Sub, var("n"), num(k)),
            4 => bin(BinOp::Mul, var("n"), var("n")),
            _ => bin(BinOp::Add, num(k), bin(BinOp::Mul, num(c), var("n"))),
        })
    }

    fn assign(name: String, value: Expr) -> Stmt {
        Stmt::Assign {
            name,
            value,
            span: Span::NONE,
        }
    }

    fn inbox() -> Stmt {
        Stmt::Call(Call {
            name: "INBOX".into(),
            positional: vec![Expr::Str("poly".into(), Span::NONE)],
            keyword: vec![],
            span: Span::NONE,
        })
    }

    /// Entity-body statements: assignments, `INBOX` shape calls, `FOR`
    /// loops counting from 1, and two-sided `IF`s.
    fn arb_body_stmt() -> impl Strategy<Value = Stmt> {
        let leaf = prop_oneof![
            (ident(), arb_affine()).prop_map(|(name, value)| assign(name, value)),
            Just(inbox()),
        ];
        leaf.prop_recursive(2, 6, 2, |inner| {
            prop_oneof![
                (
                    ident(),
                    arb_affine(),
                    prop::collection::vec(inner.clone(), 1..3)
                )
                    .prop_map(|(v, to, body)| Stmt::For {
                        var: v,
                        from: num(1),
                        to,
                        body,
                        span: Span::NONE,
                    }),
                (
                    arb_affine(),
                    arb_affine(),
                    prop::collection::vec(inner.clone(), 1..2),
                    prop::collection::vec(inner, 0..2)
                )
                    .prop_map(|(a, b, then_body, else_body)| Stmt::If {
                        cond: bin(BinOp::Gt, a, b),
                        then_body,
                        else_body,
                        span: Span::NONE,
                    }),
            ]
        })
    }

    /// The guarded decreasing self-call the measure check certifies:
    /// `IF n > 1 { q = E<i>(n = n - 1) }`.
    fn self_recursion(entity: &str) -> Stmt {
        Stmt::If {
            cond: bin(BinOp::Gt, var("n"), num(1)),
            then_body: vec![assign(
                "q".into(),
                Expr::Call(Call {
                    name: entity.to_string(),
                    positional: vec![],
                    keyword: vec![("n".into(), Span::NONE, bin(BinOp::Sub, var("n"), num(1)))],
                    span: Span::NONE,
                }),
            )],
            else_body: vec![],
            span: Span::NONE,
        }
    }

    /// Programs with 1–3 entities over one parameter `n`, possibly
    /// self-recursive with a decreasing measure, driven by top-level
    /// calls with small constant arguments.
    pub fn arb_program() -> impl Strategy<Value = Program> {
        (
            prop::collection::vec(
                (prop::collection::vec(arb_body_stmt(), 1..4), any::<bool>()),
                1..3,
            ),
            prop::collection::vec((0usize..16, 1i64..8), 1..4),
        )
            .prop_map(|(ents, top_calls)| {
                let entities: Vec<Entity> = ents
                    .into_iter()
                    .enumerate()
                    .map(|(i, (mut body, recursive))| {
                        let name = format!("E{i}");
                        if recursive {
                            body.push(self_recursion(&name));
                        }
                        Entity {
                            name,
                            params: vec![Param {
                                name: "n".into(),
                                optional: true,
                                span: Span::NONE,
                            }],
                            body,
                            span: Span::NONE,
                        }
                    })
                    .collect();
                let top = top_calls
                    .into_iter()
                    .enumerate()
                    .map(|(j, (pick, arg))| {
                        let callee = &entities[pick % entities.len()];
                        assign(
                            format!("t{j}"),
                            Expr::Call(Call {
                                name: callee.name.clone(),
                                positional: vec![],
                                keyword: vec![("n".into(), Span::NONE, num(arg))],
                                span: Span::NONE,
                            }),
                        )
                    })
                    .collect();
                Program { top, entities }
            })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The certified whole-run fuel bound dominates the fuel any actual
    /// run consumes, and a budget with headroom above the certificate is
    /// never the reason a run stops.
    #[test]
    fn certified_fuel_dominates_measured_fuel(prog in gen::arb_program()) {
        let mut prog: Program = prog;
        strip_spans(&mut prog);
        let src = print_program(&prog);

        let linter = Linter::new();
        let (diags, report) = linter.certify_source(&src);
        // Refused or unbounded programs make no claim to falsify.
        // (`continue`, not `return`: the harness inlines this body in
        // its case loop, so `return` would abort the remaining cases.)
        if amgen_lint::has_errors(&diags) {
            continue;
        }
        let cert = match report.tops.first().and_then(|c| c.as_ref()) {
            Some(c) => c.clone(),
            None => continue,
        };
        let Some(certified) = cert.total_fuel(DEFAULT_MAX_VARIANTS).closed() else {
            continue;
        };
        let budget_fuel = (certified as u64).saturating_add(1_000);
        // Recursion headroom above the certificate too, so the only way
        // to exhaust this budget is a certification soundness bug.
        let budget_rec = cert
            .recursion
            .closed()
            .map_or(64, |v| v.max(0.0) as usize + 64);

        let ctx = (&Tech::bicmos_1u()).into_gen_ctx().with_budget(
            Budget::unlimited()
                .with_dsl_fuel(budget_fuel)
                .with_max_recursion(budget_rec),
        );
        let mut interp = Interpreter::new(ctx.clone());
        let outcome = interp.run(&src).map(|_| ());

        // Soundness 1: the run never consumes more fuel than certified.
        let used = ctx.limits.fuel_used();
        prop_assert!(
            used as f64 <= certified,
            "measured fuel {used} > certified {certified}\n{src}"
        );
        // Soundness 2: with headroom above the certificate, fuel
        // exhaustion is impossible (other runtime errors are fine —
        // the certificate bounds cost, not success).
        if let Err(DslError::Gen(g)) = &outcome {
            prop_assert!(
                !g.is_budget_exhausted(),
                "budget exhausted despite certified bound {certified}: {g}\n{src}"
            );
        }
        // Shape soundness rides along: the generators only place shapes
        // through `INBOX`, one shape per executed call.
        if let Some(shapes) = cert.total_shapes(DEFAULT_MAX_VARIANTS).closed() {
            let generated = ctx.snapshot().shapes_generated;
            prop_assert!(
                generated as f64 <= shapes,
                "measured shapes {generated} > certified {shapes}\n{src}"
            );
        }
    }
}

//! Integration tests: the shipped generator programs lint clean, the
//! checked front-end gates execution on lint errors, and the analyzer is
//! fast enough to run on every invocation.

use amgen_dsl::stdlib;
use amgen_dsl::Interpreter;
use amgen_lint::{checked_run, has_errors, CheckError, Code, Linter, Severity};
use amgen_tech::Tech;

fn linter() -> Linter {
    let mut l = Linter::with_rules(Tech::bicmos_1u().compile_arc());
    l.load(stdlib::FIG2_CONTACT_ROW).unwrap();
    l
}

#[test]
fn stdlib_sources_lint_clean() {
    let l = linter();
    for (name, src) in [
        ("FIG2_CONTACT_ROW", stdlib::FIG2_CONTACT_ROW),
        ("FIG7_DIFF_PAIR", stdlib::FIG7_DIFF_PAIR),
        ("INTERDIGIT", stdlib::INTERDIGIT),
        ("STACKED", stdlib::STACKED),
        ("CENTROID_PLACEMENT", stdlib::CENTROID_PLACEMENT),
        ("VARIANT_ROW", stdlib::VARIANT_ROW),
    ] {
        let diags = l.lint_source(src);
        assert!(
            diags.is_empty(),
            "{name} should lint clean, got:\n{}",
            amgen_lint::render_all(name, src, &diags)
        );
    }
}

#[test]
fn cross_source_set_shares_one_namespace() {
    let l = Linter::with_rules(Tech::bicmos_1u().compile_arc());
    // FIG7 calls ContactRow, defined in FIG2 — linted together they
    // resolve; alone, FIG7 reports unknown callees.
    let per_file = l.lint_set(&[
        ("fig2", stdlib::FIG2_CONTACT_ROW),
        ("fig7", stdlib::FIG7_DIFF_PAIR),
    ]);
    assert!(per_file.iter().all(|d| d.is_empty()), "{per_file:?}");

    let alone = l.lint_source(stdlib::FIG7_DIFF_PAIR);
    assert!(alone.iter().any(|d| d.code == Code::UnknownCallee));
}

#[test]
fn duplicate_entities_within_a_set_warn() {
    let l = Linter::new();
    let src_a = "ENT Foo(layer)\n  INBOX(layer)\n";
    let src_b = "ENT Foo(layer)\n  ARRAY(layer)\n";
    let per_file = l.lint_set(&[("a", src_a), ("b", src_b)]);
    assert!(per_file[0].is_empty(), "{:?}", per_file[0]);
    assert_eq!(per_file[1].len(), 1, "{:?}", per_file[1]);
    assert_eq!(per_file[1][0].code, Code::DuplicateEntity);
    // Redefining a *library* entity is the interpreter's reload
    // behaviour, not a duplicate.
    let mut l = Linter::new();
    l.load(src_a).unwrap();
    assert!(l.lint_source(src_b).is_empty());
}

#[test]
fn layer_param_inference_crosses_entities() {
    // `p` flows through Outer -> Inner -> INBOX, so the bad literal at
    // the outermost call site is caught.
    let src = "\
x = Outer(p = \"polyy\")

ENT Inner(q)
  INBOX(q)

ENT Outer(p)
  i = Inner(q = p)
  compact(i, EAST, \"poly\")
";
    let diags = linter().lint_source(src);
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::UnknownLayer && d.span.line == 1),
        "{diags:?}"
    );
}

#[test]
fn checked_run_gates_on_lint_errors() {
    let tech = Tech::bicmos_1u();
    let mut interp = Interpreter::new(&tech);
    interp.load(stdlib::FIG2_CONTACT_ROW).unwrap();

    // Error: unknown layer never reaches the interpreter.
    let err = checked_run(&mut interp, "r = ContactRow(layer = \"polyy\")\n").unwrap_err();
    let CheckError::Lint(diags) = err else {
        panic!("expected lint gate, got {err:?}")
    };
    assert!(diags.iter().any(|d| d.code == Code::UnknownLayer));

    // Clean program runs.
    let out = checked_run(&mut interp, "r = ContactRow(layer = \"poly\", W = 4)\n").unwrap();
    assert!(out.contains_key("r"));
}

#[test]
fn every_code_has_distinct_text() {
    let mut seen = std::collections::HashSet::new();
    for c in Code::ALL {
        assert!(seen.insert(c.as_str()), "duplicate code {c}");
        assert_eq!(c.severity() == Severity::Error, c.as_str().starts_with('E'));
    }
}

#[test]
fn linting_the_full_program_set_is_fast() {
    // Acceptance: linting the full example set completes in < 50 ms.
    // Debug builds are ~10x slower than release; stay well under even so.
    let l = linter();
    let set: Vec<(&str, &str)> = vec![
        ("fig2", stdlib::FIG2_CONTACT_ROW),
        ("fig7", stdlib::FIG7_DIFF_PAIR),
        ("interdigit", stdlib::INTERDIGIT),
        ("stacked", stdlib::STACKED),
        ("centroid", stdlib::CENTROID_PLACEMENT),
        ("variant", stdlib::VARIANT_ROW),
    ];
    let t0 = std::time::Instant::now();
    let per_file = l.lint_set(&set);
    let elapsed = t0.elapsed();
    assert!(per_file.iter().all(|d| !has_errors(d)));
    assert!(
        elapsed.as_millis() < 250,
        "linting took {elapsed:?} (budget 250ms debug / 50ms release)"
    );
}

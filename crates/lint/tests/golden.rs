//! Golden diagnostic-output tests: one fixture per diagnostic code.
//!
//! Each `tests/fixtures/<code>_<name>.amg` is linted with the built-in
//! technology and the Fig. 2 contact row preloaded as a library; the
//! rendered output must match the `.expected` file byte for byte, and
//! the fixture must actually trigger the code it is named after.
//!
//! Regenerate expectations after an intentional renderer or message
//! change with `UPDATE_EXPECTED=1 cargo test -p amgen-lint`.

use std::fs;
use std::path::{Path, PathBuf};

use amgen_lint::{render_all, CertifyOptions, Code, Linter};
use amgen_tech::Tech;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_rendered(name: &str, src: &str) -> String {
    // A finite certify fuel so the E502/W504 fixtures can fire; generous
    // enough that no other fixture comes near it.
    let mut l = Linter::with_rules(Tech::bicmos_1u().compile_arc()).with_certify(CertifyOptions {
        fuel: Some(10_000),
        ..CertifyOptions::default()
    });
    l.load(amgen_dsl::stdlib::FIG2_CONTACT_ROW).unwrap();
    render_all(name, src, &l.lint_source(src))
}

#[test]
fn every_code_has_a_fixture() {
    let dir = fixtures_dir();
    for code in Code::ALL {
        let prefix = format!("{}_", code.as_str().to_lowercase());
        let found = fs::read_dir(&dir).unwrap().any(|e| {
            e.unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with(&prefix)
        });
        assert!(found, "no fixture for {code} (expected {prefix}*.amg)");
    }
}

#[test]
fn fixtures_match_golden_output_and_trigger_their_code() {
    let update = std::env::var_os("UPDATE_EXPECTED").is_some();
    let mut checked = 0usize;
    for entry in fs::read_dir(fixtures_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("amg") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let src = fs::read_to_string(&path).unwrap();
        let rendered = lint_rendered(&name, &src);

        // The fixture's file name declares which code it exercises.
        let code = name.split('_').next().unwrap().to_uppercase();
        assert!(
            rendered.contains(&format!("[{code}]")),
            "{name} does not trigger {code}:\n{rendered}"
        );

        let expected_path = path.with_extension("expected");
        if update {
            fs::write(&expected_path, &rendered).unwrap();
        } else {
            let expected = fs::read_to_string(&expected_path).unwrap_or_else(|_| {
                panic!("missing {expected_path:?}; run UPDATE_EXPECTED=1 cargo test")
            });
            assert_eq!(
                rendered, expected,
                "{name} diverged from golden output (UPDATE_EXPECTED=1 to regenerate)"
            );
        }
        checked += 1;
    }
    assert!(
        checked >= Code::ALL.len(),
        "expected at least one fixture per code"
    );
}

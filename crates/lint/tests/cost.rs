//! The certification pass end to end: stdlib and example programs
//! certify affine-finite, the certified bounds dominate what the
//! interpreter actually measures, and programs the certificate proves
//! too expensive are refused at admission without executing a statement.

use amgen_core::{Budget, IntoGenCtx};
use amgen_dsl::{stdlib, DslError, Interpreter};
use amgen_lint::{checked_run, CertifyOptions, CheckError, Code, Linter};
use amgen_tech::Tech;

const STDLIB: [&str; 6] = [
    stdlib::FIG2_CONTACT_ROW,
    stdlib::FIG7_DIFF_PAIR,
    stdlib::INTERDIGIT,
    stdlib::STACKED,
    stdlib::CENTROID_PLACEMENT,
    stdlib::VARIANT_ROW,
];

/// A linter with the technology bound and the whole stdlib preloaded.
fn stdlib_linter() -> Linter {
    let mut l = Linter::with_rules(Tech::bicmos_1u().compile_arc());
    for lib in STDLIB {
        l.load(lib).unwrap();
    }
    l
}

/// Top-level driver calls exercising every stdlib module, in the shapes
/// the paper uses them (Figs. 2, 3, 7 and the block-E placement).
const DRIVERS: [&str; 7] = [
    "row = ContactRow(layer = \"poly\", W = 10)\n",
    "diff = DiffPair(W = 10, L = 2)\n",
    "x = Interdigit(n = 4, W = 8, L = 2)\n",
    "x = Stacked(n = 3, W = 8, L = 2)\n",
    "e = CentroidE(side = 2, center = 2, W = 8, L = 1)\n",
    "r = FlexRow(layer = \"poly\", S = 12)\n",
    "FOR i = 1 TO 6\n  x = ContactRow(layer = \"poly\", W = i + 4)\nEND\n",
];

#[test]
fn stdlib_entities_certify_affine_finite() {
    let l = stdlib_linter();
    // Certifying an empty top still analyzes the whole library.
    let (diags, report) = l.certify_source("\n");
    assert!(diags.is_empty(), "{diags:?}");
    assert!(!report.entities.is_empty());
    for (name, c) in &report.entities {
        assert!(c.fuel.is_finite(), "{name}: fuel unbounded");
        assert!(c.compact_steps.is_finite(), "{name}: steps unbounded");
        assert!(c.shapes.is_finite(), "{name}: shapes unbounded");
        assert!(c.recursion.is_finite(), "{name}: recursion unbounded");
        assert!(c.variant_runs.is_finite(), "{name}: runs unbounded");
    }
    // Spot checks against the sources: ContactRow is three statements
    // with no compaction; DiffPair compacts five times per run, three
    // directly and one in each of two Trans calls.
    let row = &report.entities["ContactRow"];
    assert_eq!(row.fuel.affine().unwrap().as_constant(), Some(3.0));
    assert_eq!(row.compact_steps.affine().unwrap().as_constant(), Some(0.0));
    let pair = &report.entities["DiffPair"];
    assert_eq!(
        pair.compact_steps.affine().unwrap().as_constant(),
        Some(5.0)
    );
    assert_eq!(pair.recursion.affine().unwrap().as_constant(), Some(2.0));
}

#[test]
fn example_files_certify_clean_as_a_set() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut sources: Vec<(String, String)> = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("amg") {
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            sources.push((name, std::fs::read_to_string(&path).unwrap()));
        }
    }
    assert!(sources.len() >= 4, "examples/*.amg went missing");
    let set: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let l = Linter::with_rules(Tech::bicmos_1u().compile_arc());
    let (per_file, report) = l.certify_set(&set);
    for ((name, _), diags) in sources.iter().zip(&per_file) {
        assert!(diags.is_empty(), "{name}: {diags:?}");
    }
    assert_eq!(report.tops.len(), sources.len());
    for ((name, _), top) in sources.iter().zip(&report.tops) {
        let c = top.as_ref().unwrap_or_else(|| panic!("{name}: no cert"));
        assert!(c.fuel.is_finite(), "{name}: fuel unbounded");
        // Example tops call with constant arguments, so the whole-run
        // totals close to plain numbers.
        assert!(c.total_fuel(64).closed().is_some(), "{name}: open fuel");
    }
}

/// The soundness gate: for every driver, the certified whole-run totals
/// must dominate what the interpreter's metrics actually measure.
#[test]
fn certified_bounds_dominate_measured_costs() {
    let tech = Tech::bicmos_1u();
    let linter = stdlib_linter();
    for driver in DRIVERS {
        let (diags, report) = linter.certify_source(driver);
        assert!(
            !amgen_lint::has_errors(&diags),
            "{}: {diags:?}",
            driver.trim()
        );
        let cert = report.tops[0].as_ref().expect("driver certifies");

        let ctx = (&tech).into_gen_ctx();
        let mut interp = Interpreter::new(ctx.clone());
        for lib in STDLIB {
            interp.load(lib).unwrap();
        }
        interp.run(driver).unwrap_or_else(|e| {
            panic!("{}: driver must run: {e}", driver.trim());
        });

        let mv = interp.max_variants;
        let fuel = cert.total_fuel(mv).closed().expect("closed fuel");
        let steps = cert.total_compact_steps(mv).closed().expect("closed steps");
        let shapes = cert.total_shapes(mv).closed().expect("closed shapes");
        let snap = ctx.snapshot();
        let used = ctx.limits.fuel_used();
        assert!(
            used as f64 <= fuel,
            "{}: measured fuel {used} > certified {fuel}",
            driver.trim()
        );
        assert!(
            ctx.limits.compact_steps() as f64 <= steps,
            "{}: measured steps {} > certified {steps}",
            driver.trim(),
            ctx.limits.compact_steps()
        );
        assert!(
            snap.shapes_generated as f64 <= shapes,
            "{}: measured shapes {} > certified {shapes}",
            driver.trim(),
            snap.shapes_generated
        );
        // The certificate is a bound, not an oracle — but it should not
        // be vacuous either: a completed run consumes at least fuel_lo.
        assert!(
            used as f64 >= cert.fuel_lo,
            "{}: measured fuel {used} below the certified lower bound {}",
            driver.trim(),
            cert.fuel_lo
        );
    }
}

/// A constant fuel bomb is refused at admission: the certificate proves
/// the loop exceeds the budget, so not a single statement executes.
#[test]
fn fuel_bomb_is_rejected_before_executing() {
    let tech = Tech::bicmos_1u();
    let ctx = (&tech).into_gen_ctx().with_budget(
        Budget::unlimited()
            .with_dsl_fuel(1_000)
            .with_max_recursion(32),
    );
    let mut interp = Interpreter::new(ctx.clone());
    let src = "FOR i = 1 TO 100000\n  x = i\nEND\n";
    let err = checked_run(&mut interp, src).expect_err("bomb must be refused");
    match &err {
        CheckError::Admission { estimate, reason } => {
            assert!(estimate.fuel.unwrap() > 1_000, "{estimate:?}");
            assert!(reason.contains("fuel"), "{reason}");
        }
        other => panic!("expected admission refusal, got: {other}"),
    }
    assert_eq!(ctx.limits.fuel_used(), 0, "refusal must precede execution");
    assert_eq!(ctx.snapshot().shapes_generated, 0);
}

/// An unboundedly recursive program is refused by lint (E501) — also
/// without executing anything.
#[test]
fn recursion_bomb_is_rejected_by_lint() {
    let tech = Tech::bicmos_1u();
    let ctx = (&tech).into_gen_ctx();
    let mut interp = Interpreter::new(ctx.clone());
    let src = "x = ERec(1)\n\nENT ERec(<n>)\n  y = ERec(n + 1)\n";
    let err = checked_run(&mut interp, src).expect_err("recursion bomb must be refused");
    match &err {
        CheckError::Lint(diags) => {
            assert!(
                diags.iter().any(|d| d.code == Code::UnboundedRecursion),
                "{diags:?}"
            );
        }
        other => panic!("expected a lint refusal, got: {other}"),
    }
    assert_eq!(ctx.limits.fuel_used(), 0);
}

/// Bounded recursion with a decreasing measure passes admission and runs.
#[test]
fn bounded_recursion_is_admitted_and_runs() {
    let tech = Tech::bicmos_1u();
    let ctx = (&tech).into_gen_ctx().with_budget(
        Budget::unlimited()
            .with_dsl_fuel(1_000)
            .with_max_recursion(32),
    );
    let mut interp = Interpreter::new(ctx.clone());
    let src = "\
x = ECount(n = 5)

ENT ECount(<n>)
  INBOX(\"poly\", W = n + 1)
  IF n > 1
    y = ECount(n = n - 1)
  END
";
    checked_run(&mut interp, src).unwrap();
    assert!(ctx.limits.fuel_used() > 0);
}

/// A program with no static bound (W503) still runs under the dynamic
/// budget — the certificate makes no claim rather than a false one.
#[test]
fn statically_unbounded_programs_still_run_dynamically() {
    let tech = Tech::bicmos_1u();
    let ctx = (&tech).into_gen_ctx().with_budget(
        Budget::unlimited()
            .with_dsl_fuel(10_000)
            .with_max_recursion(32),
    );
    let mut interp = Interpreter::new(ctx.clone());
    // n * n trips: not affine, so W503 — a warning, not an error.
    let src = "\
x = ESq(n = 3)

ENT ESq(<n>)
  FOR i = 1 TO n * n
    INBOX(\"poly\")
  END
";
    let linter = {
        let mut l = Linter::with_rules(Tech::bicmos_1u().compile_arc());
        l.load(src).unwrap();
        l
    };
    let (diags, _) = linter.certify_source(src);
    assert!(
        diags.iter().any(|d| d.code == Code::NoStaticBound),
        "{diags:?}"
    );
    checked_run(&mut interp, src).unwrap();
    assert!(ctx.limits.fuel_used() > 9, "the loop really ran");
}

/// E502 fires only when a fuel limit is configured for certification,
/// and flags loops certain to exhaust it.
#[test]
fn certain_exhaustion_needs_a_configured_fuel() {
    let src = "FOR i = 1 TO 20000\n  x = i\nEND\n";
    let lax = Linter::new();
    let (diags, _) = lax.certify_source(src);
    assert!(
        !diags.iter().any(|d| d.code == Code::CertainExhaustion),
        "{diags:?}"
    );
    let strict = Linter::new().with_certify(CertifyOptions {
        fuel: Some(10_000),
        ..CertifyOptions::default()
    });
    let (diags, _) = strict.certify_source(src);
    assert!(
        diags
            .iter()
            .any(|d| d.code == Code::CertainExhaustion && d.is_error()),
        "{diags:?}"
    );
}

// ----- spanless-diagnostic regressions ----------------------------------

/// Runtime errors synthesized without a source location must not claim
/// "line 0".
#[test]
fn line_zero_runtime_errors_render_without_a_location() {
    let with_line = DslError::Runtime {
        line: 7,
        message: "boom".into(),
    };
    assert_eq!(with_line.to_string(), "line 7: boom");
    let without = DslError::Runtime {
        line: 0,
        message: "boom".into(),
    };
    assert_eq!(without.to_string(), "boom");
}

/// Scope-level certification findings carry no span; they must render
/// with a bare file arrow, never `file:0:0`.
#[test]
fn spanless_certification_findings_render_cleanly() {
    let l = Linter::new().with_certify(CertifyOptions {
        fuel: Some(10),
        ..CertifyOptions::default()
    });
    // No single loop exceeds the limit — the straight-line sequence
    // does — so the E502 lands at scope level with no span.
    let src =
        "a = 1\nb = 2\nc = 3\nd = 4\ne = 5\nf = 6\ng = 7\nh = 8\ni = 9\nj = 10\nk = 11\nl = 12\n";
    let diags = l.lint_source(src);
    let e502 = diags
        .iter()
        .find(|d| d.code == Code::CertainExhaustion)
        .unwrap_or_else(|| panic!("{diags:?}"));
    let rendered = amgen_lint::render("t.amg", src, e502);
    assert!(rendered.contains(" --> t.amg\n"), "{rendered}");
    assert!(!rendered.contains(":0"), "{rendered}");
}

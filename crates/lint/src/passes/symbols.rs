//! Pass 1 — symbol and entity resolution.
//!
//! Resolves every call site against the builtin table and the entity
//! signature set: unknown callees (E001), arity overruns (E003), unknown
//! keyword parameters (E004), missing required parameters (E005). Tracks
//! definite assignment through the statement list to flag reads that no
//! assignment reaches (W006 — a warning, because the runtime deliberately
//! reads unknown names as *unset* so omitted optional parameters flow
//! through). Also checks `ENT` headers for repeated parameter names
//! (W007) and `compact` directions (E008).

use std::collections::HashSet;

use amgen_dsl::ast::{Call, Expr, Program, Stmt};
use amgen_geom::Dir;

use crate::analysis::{builtin, scopes, suggest, Analysis};
use crate::diag::{Code, Diagnostic};

pub(crate) fn run(prog: &Program, a: &Analysis, out: &mut Vec<Diagnostic>) {
    // W007: duplicate parameter names in ENT headers.
    for e in &prog.entities {
        let mut seen = HashSet::new();
        for p in &e.params {
            if !seen.insert(p.name.as_str()) {
                out.push(
                    Diagnostic::new(
                        Code::DuplicateParam,
                        p.span,
                        format!("parameter `{}` is declared twice in `{}`", p.name, e.name),
                    )
                    .with_help("later arguments silently overwrite earlier ones"),
                );
            }
        }
    }

    for scope in scopes(prog) {
        let mut defined: HashSet<String> = scope
            .entity
            .map(|e| e.params.iter().map(|p| p.name.clone()).collect())
            .unwrap_or_default();
        check_block(scope.body, &mut defined, a, out);
    }
}

fn check_block(
    stmts: &[Stmt],
    defined: &mut HashSet<String>,
    a: &Analysis,
    out: &mut Vec<Diagnostic>,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { name, value, .. } => {
                check_expr(value, defined, a, out);
                defined.insert(name.clone());
            }
            Stmt::Call(c) => check_call(c, defined, a, out),
            Stmt::Compact {
                obj,
                dir,
                ignore,
                span,
                dir_span,
            } => {
                if !defined.contains(obj) {
                    out.push(
                        Diagnostic::new(
                            Code::UndefinedVar,
                            *span,
                            format!("`{obj}` is compacted before any assignment reaches it"),
                        )
                        .with_help("assign it an object first"),
                    );
                }
                if Dir::parse(dir).is_none() {
                    out.push(
                        Diagnostic::new(
                            Code::BadDirection,
                            *dir_span,
                            format!("unknown compaction direction `{dir}`"),
                        )
                        .with_help("use NORTH, SOUTH, EAST or WEST"),
                    );
                }
                for e in ignore {
                    check_expr(e, defined, a, out);
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                check_expr(from, defined, a, out);
                check_expr(to, defined, a, out);
                defined.insert(var.clone());
                check_block(body, defined, a, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                check_expr(cond, defined, a, out);
                // Optimistic merge: a name assigned in either branch
                // counts as defined afterwards — W006 targets reads that
                // *no* path can reach, not conservative may-analysis.
                let mut then_set = defined.clone();
                check_block(then_body, &mut then_set, a, out);
                let mut else_set = defined.clone();
                check_block(else_body, &mut else_set, a, out);
                defined.extend(then_set);
                defined.extend(else_set);
            }
            Stmt::Variant { arms, .. } => {
                let mut merged = HashSet::new();
                for arm in arms {
                    let mut arm_set = defined.clone();
                    check_block(arm, &mut arm_set, a, out);
                    merged.extend(arm_set);
                }
                defined.extend(merged);
            }
        }
    }
}

fn check_expr(e: &Expr, defined: &HashSet<String>, a: &Analysis, out: &mut Vec<Diagnostic>) {
    match e {
        Expr::Var(name, span) => {
            if !defined.contains(name) {
                out.push(
                    Diagnostic::new(
                        Code::UndefinedVar,
                        *span,
                        format!("`{name}` is read before any assignment reaches it"),
                    )
                    .with_help("it evaluates as unset; assign it or declare a parameter"),
                );
            }
        }
        Expr::Call(c) => check_call(c, defined, a, out),
        Expr::Binary { lhs, rhs, .. } => {
            check_expr(lhs, defined, a, out);
            check_expr(rhs, defined, a, out);
        }
        Expr::Neg(inner, _) => check_expr(inner, defined, a, out),
        Expr::Number(..) | Expr::Str(..) | Expr::Layer(..) => {}
    }
}

fn check_call(c: &Call, defined: &HashSet<String>, a: &Analysis, out: &mut Vec<Diagnostic>) {
    // (callee name, param names in order, required param names)
    let resolved: Option<(Vec<&str>, Vec<&str>)> = if let Some(b) = builtin(&c.name) {
        Some((
            b.args.iter().map(|p| p.name).collect(),
            b.args
                .iter()
                .filter(|p| p.required)
                .map(|p| p.name)
                .collect(),
        ))
    } else if let Some(sig) = a.sigs.get(&c.name) {
        Some((
            sig.params.iter().map(|p| p.name.as_str()).collect(),
            sig.params
                .iter()
                .filter(|p| !p.optional)
                .map(|p| p.name.as_str())
                .collect(),
        ))
    } else {
        let mut d = Diagnostic::new(
            Code::UnknownCallee,
            c.span,
            format!("call to unknown function or entity `{}`", c.name),
        );
        let cands = crate::analysis::BUILTINS
            .iter()
            .map(|b| b.name)
            .chain(a.sigs.keys().map(String::as_str));
        if let Some(s) = suggest(&c.name, cands) {
            d = d.with_help(format!("did you mean `{s}`?"));
        }
        out.push(d);
        None
    };

    if let Some((params, required)) = resolved {
        if c.positional.len() > params.len() {
            out.push(
                Diagnostic::new(
                    Code::TooManyArgs,
                    c.span,
                    format!(
                        "`{}` takes at most {} argument(s) but {} are given",
                        c.name,
                        params.len(),
                        c.positional.len()
                    ),
                )
                .with_help(format!("its parameters are ({})", params.join(", "))),
            );
        }
        for (k, kspan, _) in &c.keyword {
            if !params.contains(&k.as_str()) {
                let mut d = Diagnostic::new(
                    Code::UnknownParam,
                    *kspan,
                    format!("`{}` has no parameter `{k}`", c.name),
                );
                if let Some(s) = suggest(k, params.iter().copied()) {
                    d = d.with_help(format!("did you mean `{s}`?"));
                }
                out.push(d);
            }
        }
        for (i, r) in required.iter().enumerate() {
            let pos_index = params.iter().position(|p| p == r).unwrap_or(i);
            let by_position = pos_index < c.positional.len();
            let by_keyword = c.keyword.iter().any(|(k, _, _)| k == r);
            if !by_position && !by_keyword {
                out.push(
                    Diagnostic::new(
                        Code::MissingParam,
                        c.span,
                        format!("`{}` requires parameter `{r}`", c.name),
                    )
                    .with_help(format!("pass it positionally or as `{r} = ...`")),
                );
            }
        }
    }

    for e in &c.positional {
        check_expr(e, defined, a, out);
    }
    for (_, _, e) in &c.keyword {
        check_expr(e, defined, a, out);
    }
}

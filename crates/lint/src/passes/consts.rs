//! Pass 5 — constant-folding sanity checks.
//!
//! Folds constant subexpressions and flags what can never work: division
//! by a constant zero (E401), constant negative dimensions flowing into
//! geometry (E402), and `FOR` ranges that are statically empty (W403).

use amgen_dsl::ast::{BinOp, Expr, Program, Stmt};

use crate::analysis::{
    expectations, fold, scopes, walk_calls, walk_exprs_in_stmt, walk_stmts, Analysis, Expect,
};
use crate::diag::{Code, Diagnostic};

pub(crate) fn run(prog: &Program, a: &Analysis, out: &mut Vec<Diagnostic>) {
    for scope in scopes(prog) {
        // E401: any division whose divisor folds to zero.
        walk_stmts(scope.body, &mut |s| {
            walk_exprs_in_stmt(s, &mut |e| {
                if let Expr::Binary {
                    op: BinOp::Div,
                    rhs,
                    ..
                } = e
                {
                    if fold(rhs) == Some(0.0) {
                        out.push(
                            Diagnostic::new(Code::DivisionByZero, rhs.span(), "division by zero")
                                .with_help("the interpreter aborts the program here"),
                        );
                    }
                }
            });

            // W403: statically empty loop range.
            if let Stmt::For { from, to, span, .. } = s {
                if let (Some(lo), Some(hi)) = (fold(from), fold(to)) {
                    if lo > hi {
                        out.push(
                            Diagnostic::new(
                                Code::EmptyLoop,
                                *span,
                                format!("FOR range {lo}..{hi} never executes"),
                            )
                            .with_help("the body is dead; swap the bounds or remove the loop"),
                        );
                    }
                }
            }
        });

        // E402: constant negative dimension in a geometry position.
        walk_calls(scope.body, &mut |c| {
            let known_entity = a.sigs.contains_key(&c.name);
            for (expect, arg) in expectations(c, &a.sigs) {
                let dim_position = expect == Expect::Num;
                if dim_position {
                    check_negative(arg, &c.name, out);
                }
            }
            // Entity parameters carry no kind, but the W/L convention is
            // universal in generator programs — a constant negative width
            // or length is wrong wherever it lands.
            if known_entity {
                for (k, _, arg) in &c.keyword {
                    if k == "W" || k == "L" {
                        check_negative(arg, &c.name, out);
                    }
                }
            }
        });
    }
}

fn check_negative(arg: &Expr, callee: &str, out: &mut Vec<Diagnostic>) {
    if let Some(v) = fold(arg) {
        if v < 0.0 {
            out.push(
                Diagnostic::new(
                    Code::NegativeDimension,
                    arg.span(),
                    format!("`{callee}` is given a negative dimension ({v})"),
                )
                .with_help("widths, lengths and spacings are non-negative micrometres"),
            );
        }
    }
}

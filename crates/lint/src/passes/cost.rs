//! Pass 6 — static cost & termination certification.
//!
//! An abstract interpretation over the [`crate::domain`] lattice derives,
//! for every entity and every top-level scope, a [`CostCertificate`]:
//! symbolic upper bounds (affine in the entity's numeric parameters) on
//! interpreter fuel, compaction steps, generated shape count, recursion
//! depth and explored variant runs, plus the set of layers the program
//! can touch. Certificates are compositional: a call site substitutes the
//! callee's certificate with interval bounds on the arguments.
//!
//! The pass walks entities **callees first** (Tarjan SCCs of the call
//! graph in reverse topological order) so every non-recursive call finds
//! a finished certificate. Recursive SCCs get a *decreasing measure*
//! check: every in-SCC call must pass `m - c` (constant `c > 0`) for a
//! parameter `m` that is bounded below by an enclosing `IF m > k` guard.
//! Self-recursion with a single unconditional-in-loop-free call site
//! certifies an affine depth `(m - k)/c + 2`; tree or mutual recursion
//! proves termination but widens the cost to unbounded (W503); a failed
//! measure is statically unbounded recursion (E501).
//!
//! With a configured fuel limit the pass also reports *certain* budget
//! exhaustion — the certified **lower** bound already exceeds the limit
//! (E502) — and loops whose trip bound exceeds the fuel at the maximum
//! declared parameter range (W504).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use amgen_dsl::ast::{BinOp, Call, Entity, Expr, Program, Stmt};
use amgen_dsl::costmodel::{self, ShapeCost};
use amgen_dsl::span::Span;

use crate::analysis::{expectations, fold, walk_expr, Analysis};
use crate::diag::{Code, Diagnostic};
use crate::domain::{Affine, Bound, Interval};

/// Tunables of the certification pass.
#[derive(Debug, Clone)]
pub struct CertifyOptions {
    /// Fuel limit to certify against. `None` disables E502/W504 — the
    /// symbolic certificates are still computed.
    pub fuel: Option<u64>,
    /// Assumed maximum value of any entity parameter when instantiating
    /// a symbolic loop bound for the W504 check.
    pub param_hi: f64,
    /// Assumed ceiling on the contact cuts one `ARRAY` call can place.
    /// The true count is geometry-dependent (grid fill); certificates
    /// that rely on this record [`CostCertificate::assumes_array_cuts`].
    pub max_array_cuts: u64,
}

impl Default for CertifyOptions {
    fn default() -> CertifyOptions {
        CertifyOptions {
            fuel: None,
            param_hi: 1024.0,
            max_array_cuts: 4096,
        }
    }
}

/// The static cost certificate of one entity (or top-level scope).
///
/// All `Bound`s are **per single variant-combination run**, affine in
/// the entity's own parameters, valid for non-negative parameter values
/// (see the [`crate::domain`] soundness contract). Multiply by
/// [`CostCertificate::runs_executed`] for whole-program totals — the
/// interpreter re-runs the scope once per explored variant prefix.
#[derive(Debug, Clone)]
pub struct CostCertificate {
    /// Upper bound on interpreter fuel (statements executed) per run.
    pub fuel: Bound,
    /// Constant **lower** bound on the fuel of one completed run.
    pub fuel_lo: f64,
    /// Upper bound on successive-compaction steps per run.
    pub compact_steps: Bound,
    /// Upper bound on shapes generated per run.
    pub shapes: Bound,
    /// Upper bound on entity-call nesting depth.
    pub recursion: Bound,
    /// Upper bound on variant prefixes the backtracker explores
    /// (`1 + choices × combinations`); the interpreter additionally caps
    /// this at its `max_variants`.
    pub variant_runs: Bound,
    /// Layer names the scope can touch.
    pub layers: BTreeSet<String>,
    /// False when a layer argument was not statically known, so
    /// [`CostCertificate::layers`] is a subset of the truth.
    pub layers_exact: bool,
    /// True when the shape bound leans on
    /// [`CertifyOptions::max_array_cuts`].
    pub assumes_array_cuts: bool,
    /// The parameters the bounds range over, in declaration order.
    pub params: Vec<String>,
}

impl CostCertificate {
    /// Bound on runs the interpreter actually executes: the variant-run
    /// bound capped by the interpreter's `max_variants`.
    pub fn runs_executed(&self, max_variants: usize) -> Bound {
        let cap = max_variants as f64;
        match self.variant_runs.affine().and_then(Affine::as_constant) {
            Some(r) => Bound::constant(r.min(cap)),
            None => Bound::constant(cap),
        }
    }

    /// Whole-program fuel: per-run fuel times executed runs.
    pub fn total_fuel(&self, max_variants: usize) -> Bound {
        self.fuel.mul(&self.runs_executed(max_variants))
    }

    /// Whole-program compaction steps.
    pub fn total_compact_steps(&self, max_variants: usize) -> Bound {
        self.compact_steps.mul(&self.runs_executed(max_variants))
    }

    /// Whole-program shape count.
    pub fn total_shapes(&self, max_variants: usize) -> Bound {
        self.shapes.mul(&self.runs_executed(max_variants))
    }

    /// Closes the certificate into plain numbers for budget admission —
    /// parameter-free scopes only (a top level, or an entity without
    /// parameters). Unbounded or parameter-dependent quantities close to
    /// `None`, meaning "no static claim; rely on the dynamic budget".
    pub fn estimate(&self, max_variants: usize) -> amgen_core::CostEstimate {
        let close = |b: &Bound| b.closed().map(|v| v.max(0.0).ceil() as u64);
        amgen_core::CostEstimate {
            fuel: close(&self.total_fuel(max_variants)),
            recursion: self.recursion.closed().map(|v| v.max(0.0).ceil() as usize),
            compact_steps: close(&self.total_compact_steps(max_variants)),
            shapes: close(&self.total_shapes(max_variants)),
        }
    }
}

/// Certificates for everything the linter saw.
#[derive(Debug, Clone, Default)]
pub struct CostReport {
    /// Per-entity certificates, library entities included.
    pub entities: BTreeMap<String, CostCertificate>,
    /// One top-level certificate per linted file (`None` on parse error).
    pub tops: Vec<Option<CostCertificate>>,
}

// ----- internal cost vector ---------------------------------------------

/// The running cost of a statement sequence, in the parameters of the
/// enclosing entity. `combos` is the number of complete variant
/// combinations below this point, `choices` the number of decision
/// points one run passes through; the backtracker explores at most
/// `1 + choices × combos` prefixes.
#[derive(Debug, Clone)]
struct CostVec {
    fuel: Bound,
    fuel_lo: f64,
    steps: Bound,
    shapes: Bound,
    depth: Bound,
    choices: Bound,
    combos: Bound,
}

impl CostVec {
    fn zero() -> CostVec {
        CostVec {
            fuel: Bound::constant(0.0),
            fuel_lo: 0.0,
            steps: Bound::constant(0.0),
            shapes: Bound::constant(0.0),
            depth: Bound::constant(0.0),
            choices: Bound::constant(0.0),
            combos: Bound::constant(1.0),
        }
    }

    /// The base cost of one executed statement.
    fn stmt() -> CostVec {
        CostVec {
            fuel: Bound::constant(costmodel::FUEL_PER_STMT as f64),
            fuel_lo: costmodel::FUEL_PER_STMT as f64,
            ..CostVec::zero()
        }
    }

    /// Sequential composition.
    fn seq(&self, o: &CostVec) -> CostVec {
        CostVec {
            fuel: self.fuel.add(&o.fuel),
            fuel_lo: self.fuel_lo + o.fuel_lo,
            steps: self.steps.add(&o.steps),
            shapes: self.shapes.add(&o.shapes),
            depth: self.depth.max(&o.depth),
            choices: self.choices.add(&o.choices),
            combos: self.combos.mul(&o.combos),
        }
    }

    /// Join of alternative branches (`IF`): upper bounds max, the lower
    /// bound takes the cheaper branch.
    fn join(&self, o: &CostVec) -> CostVec {
        CostVec {
            fuel: self.fuel.max(&o.fuel),
            fuel_lo: self.fuel_lo.min(o.fuel_lo),
            steps: self.steps.max(&o.steps),
            shapes: self.shapes.max(&o.shapes),
            depth: self.depth.max(&o.depth),
            choices: self.choices.max(&o.choices),
            combos: self.combos.max(&o.combos),
        }
    }

    /// Loop body repeated up to `trips` times (at least `trips_lo`).
    fn repeat(&self, trips: &Bound, trips_lo: f64) -> CostVec {
        CostVec {
            fuel: self.fuel.mul(trips),
            fuel_lo: self.fuel_lo * trips_lo,
            steps: self.steps.mul(trips),
            shapes: self.shapes.mul(trips),
            depth: self.depth.clone(),
            choices: self.choices.mul(trips),
            combos: pow_bound(&self.combos, trips),
        }
    }
}

/// `combos ^ trips`, staying in the affine world: `1^t = 1`, constant
/// bases with constant exponents fold (overflow widens), anything else
/// is unbounded.
fn pow_bound(combos: &Bound, trips: &Bound) -> Bound {
    match combos.affine().and_then(Affine::as_constant) {
        Some(c) if c <= 1.0 => Bound::constant(c.max(1.0)),
        Some(c) => match trips.affine().and_then(Affine::as_constant) {
            Some(t) => {
                let v = c.powf(t.max(0.0));
                if v.is_finite() && v <= 1e18 {
                    Bound::constant(v)
                } else {
                    Bound::Unbounded
                }
            }
            None => Bound::Unbounded,
        },
        None => Bound::Unbounded,
    }
}

// ----- abstract environment ---------------------------------------------

/// Abstract value of a variable: a numeric interval, or a non-numeric
/// value (object, string, layer) the cost analysis never reads.
#[derive(Debug, Clone)]
enum AbsVal {
    Num(Interval),
    Other,
}

type Env = HashMap<String, AbsVal>;

fn env_interval(env: &Env, name: &str) -> Interval {
    match env.get(name) {
        Some(AbsVal::Num(iv)) => iv.clone(),
        _ => Interval::top(),
    }
}

/// Interval abstraction of a numeric expression. Calls and non-numeric
/// literals go to top — their *cost* is accounted separately.
fn abs_expr(e: &Expr, env: &Env) -> Interval {
    match e {
        Expr::Number(n, _) => Interval::constant(*n),
        Expr::Var(v, _) => env_interval(env, v),
        Expr::Neg(inner, _) => abs_expr(inner, env).neg(),
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = abs_expr(lhs, env);
            let b = abs_expr(rhs, env);
            match op {
                BinOp::Add => a.add(&b),
                BinOp::Sub => a.sub(&b),
                BinOp::Mul => a.mul(&b),
                BinOp::Div => a.div(&b),
                // Comparisons land in {0, 1}.
                _ => Interval {
                    lo: Some(Affine::constant(0.0)),
                    hi: Some(Affine::constant(1.0)),
                },
            }
        }
        Expr::Str(..) | Expr::Layer(..) | Expr::Call(_) => Interval::top(),
    }
}

/// Abstract value an assignment stores.
fn abs_value(e: &Expr, env: &Env) -> AbsVal {
    match e {
        Expr::Str(..) | Expr::Layer(..) => AbsVal::Other,
        Expr::Call(_) => AbsVal::Other,
        Expr::Var(v, _) => env.get(v).cloned().unwrap_or(AbsVal::Num(Interval::top())),
        _ => AbsVal::Num(abs_expr(e, env)),
    }
}

/// Variable-wise join of two branch environments.
fn join_envs(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for k in a.keys().chain(b.keys()) {
        if out.contains_key(k) {
            continue;
        }
        let v = match (a.get(k), b.get(k)) {
            (Some(AbsVal::Num(x)), Some(AbsVal::Num(y))) => AbsVal::Num(x.join(y)),
            (Some(AbsVal::Other), Some(AbsVal::Other)) => AbsVal::Other,
            _ => AbsVal::Num(Interval::top()),
        };
        out.insert(k.clone(), v);
    }
    out
}

/// Every variable a statement list can assign (including loop
/// counters) — havocked before a loop body is abstracted once.
fn assigned_vars(stmts: &[Stmt], out: &mut HashSet<String>) {
    crate::analysis::walk_stmts(stmts, &mut |s| match s {
        Stmt::Assign { name, .. } => {
            out.insert(name.clone());
        }
        Stmt::For { var, .. } => {
            out.insert(var.clone());
        }
        _ => {}
    });
}

// ----- recursion bookkeeping --------------------------------------------

/// One call into the SCC currently under analysis.
#[derive(Debug, Clone)]
struct RecSite {
    callee: String,
    span: Span,
    in_loop: bool,
    /// `(param, step, guard)`: the call passes `param - step` back into
    /// the *same* parameter, and an enclosing guard bounds `param`
    /// below by `guard` — the self-recursion measure.
    dec_self: Option<(String, f64, f64)>,
    /// Like `dec_self` but the decreased value may land in any callee
    /// parameter — the weaker mutual-recursion measure.
    dec_any: Option<(String, f64, f64)>,
}

/// Per-scope analysis state.
struct ScopeState {
    rec_sites: Vec<RecSite>,
    /// First place a bound was widened to unbounded, and why (W503).
    widen: Option<(Span, String)>,
    /// Diagnostics local to this scope (E502/W504 at loops).
    diags: Vec<Diagnostic>,
    /// A local E502 already fired — the scope-level one is redundant.
    e502_local: bool,
    layers: BTreeSet<String>,
    layers_exact: bool,
    assumes_array_cuts: bool,
    /// Parameters never reassigned in the body — the only ones usable
    /// as guards and recursion measures.
    stable: HashSet<String>,
    loop_depth: usize,
}

impl ScopeState {
    fn new(stable: HashSet<String>) -> ScopeState {
        ScopeState {
            rec_sites: Vec::new(),
            widen: None,
            diags: Vec::new(),
            e502_local: false,
            layers: BTreeSet::new(),
            layers_exact: true,
            assumes_array_cuts: false,
            stable,
            loop_depth: 0,
        }
    }

    fn note_widen(&mut self, span: Span, why: impl Into<String>) {
        if self.widen.is_none() {
            self.widen = Some((span, why.into()));
        }
    }
}

/// A finished entity cost, in the entity's own parameters.
struct EntityCost {
    vec: CostVec,
    layers: BTreeSet<String>,
    layers_exact: bool,
    assumes_array_cuts: bool,
    /// E501 fired for this entity — callers suppress their own W503.
    condemned: bool,
}

// ----- guard facts -------------------------------------------------------

/// A lower-bound fact a branch establishes: the guarded parameter and
/// its bound.
type GuardFact = (String, f64);

/// Lower-bound facts an `IF` condition establishes, for the THEN branch
/// and for the ELSE branch.
fn guard_facts(cond: &Expr) -> (Vec<GuardFact>, Vec<GuardFact>) {
    let mut then_f = Vec::new();
    let mut else_f = Vec::new();
    if let Expr::Binary { op, lhs, rhs, .. } = cond {
        if let Expr::Var(m, _) = &**lhs {
            if let Some(k) = fold(rhs) {
                match op {
                    BinOp::Gt | BinOp::Ge => then_f.push((m.clone(), k)),
                    BinOp::Lt | BinOp::Le => else_f.push((m.clone(), k)),
                    _ => {}
                }
            }
        }
        if let Expr::Var(m, _) = &**rhs {
            if let Some(k) = fold(lhs) {
                match op {
                    // k < m / k <= m bound m below in THEN.
                    BinOp::Lt | BinOp::Le => then_f.push((m.clone(), k)),
                    BinOp::Gt | BinOp::Ge => else_f.push((m.clone(), k)),
                    _ => {}
                }
            }
        }
    }
    (then_f, else_f)
}

/// Matches `m - c` (constant `c > 0`, `m` a stable parameter).
fn decrement_of(e: &Expr, stable: &HashSet<String>) -> Option<(String, f64)> {
    if let Expr::Binary {
        op: BinOp::Sub,
        lhs,
        rhs,
        ..
    } = e
    {
        if let Expr::Var(m, _) = &**lhs {
            if stable.contains(m) {
                if let Some(c) = fold(rhs) {
                    if c > 0.0 {
                        return Some((m.clone(), c));
                    }
                }
            }
        }
    }
    None
}

// ----- the analyzer ------------------------------------------------------

struct Analyzer<'a> {
    a: &'a Analysis<'a>,
    opts: &'a CertifyOptions,
    entities: HashMap<String, (&'a Entity, Option<usize>)>,
    costs: HashMap<String, EntityCost>,
    /// Members of the SCC currently being analyzed.
    scc: HashSet<String>,
}

/// Runs the pass over the whole linted set. Diagnostics for entities
/// defined in file `i` land in `per_file[i]`; preloaded library
/// entities are certified but never diagnosed (they have no file).
pub(crate) fn run(
    library: &[Entity],
    programs: &[Option<Program>],
    a: &Analysis<'_>,
    opts: &CertifyOptions,
    per_file: &mut [Vec<Diagnostic>],
) -> CostReport {
    let mut entities: HashMap<String, (&Entity, Option<usize>)> = HashMap::new();
    for e in library {
        entities.insert(e.name.clone(), (e, None));
    }
    for (i, prog) in programs.iter().enumerate() {
        let Some(prog) = prog else { continue };
        for e in &prog.entities {
            entities.insert(e.name.clone(), (e, Some(i)));
        }
    }

    let components = sccs(&entities);
    let mut an = Analyzer {
        a,
        opts,
        entities,
        costs: HashMap::new(),
        scc: HashSet::new(),
    };
    for comp in &components {
        an.analyze_scc(comp, per_file);
    }

    let mut tops = Vec::with_capacity(programs.len());
    for (i, prog) in programs.iter().enumerate() {
        tops.push(prog.as_ref().map(|p| an.analyze_top(&p.top, i, per_file)));
    }

    let entities_out = an
        .costs
        .iter()
        .map(|(name, c)| {
            let params = an.entities[name]
                .0
                .params
                .iter()
                .map(|p| p.name.clone())
                .collect();
            (name.clone(), to_cert(c, params))
        })
        .collect();
    CostReport {
        entities: entities_out,
        tops,
    }
}

fn to_cert(c: &EntityCost, params: Vec<String>) -> CostCertificate {
    // runs ≤ 1 + choices × combos (tree nodes of the backtracking search).
    let variant_runs = Bound::constant(1.0).add(&c.vec.choices.mul(&c.vec.combos));
    CostCertificate {
        fuel: c.vec.fuel.clone(),
        fuel_lo: c.vec.fuel_lo,
        compact_steps: c.vec.steps.clone(),
        shapes: c.vec.shapes.clone(),
        recursion: c.vec.depth.clone(),
        variant_runs,
        layers: c.layers.clone(),
        layers_exact: c.layers_exact,
        assumes_array_cuts: c.assumes_array_cuts,
        params,
    }
}

impl<'a> Analyzer<'a> {
    fn analyze_scc(&mut self, comp: &[String], per_file: &mut [Vec<Diagnostic>]) {
        self.scc = comp.iter().cloned().collect();
        let self_loop = comp.len() == 1 && calls_of(self.entities[&comp[0]].0).contains(&comp[0]);
        if comp.len() == 1 && !self_loop {
            self.analyze_plain(&comp[0], per_file);
        } else if comp.len() == 1 {
            self.analyze_self_recursive(&comp[0], per_file);
        } else {
            self.analyze_mutual(comp, per_file);
        }
        self.scc.clear();
    }

    /// Runs the body abstraction for one entity.
    fn analyze_entity(&mut self, name: &str) -> (CostVec, ScopeState) {
        let ent = self.entities[name].0;
        let mut assigned = HashSet::new();
        assigned_vars(&ent.body, &mut assigned);
        let stable = ent
            .params
            .iter()
            .map(|p| p.name.clone())
            .filter(|p| !assigned.contains(p))
            .collect();
        let mut st = ScopeState::new(stable);
        let mut env: Env = ent
            .params
            .iter()
            .map(|p| (p.name.clone(), AbsVal::Num(Interval::param(&p.name))))
            .collect();
        let vec = self.block(&ent.body, &mut env, &[], &mut st);
        (vec, st)
    }

    fn analyze_plain(&mut self, name: &str, per_file: &mut [Vec<Diagnostic>]) {
        let (vec, st) = self.analyze_entity(name);
        self.finish(name, vec, st, false, per_file);
    }

    fn analyze_self_recursive(&mut self, name: &str, per_file: &mut [Vec<Diagnostic>]) {
        let ent_span = self.entities[name].0.span;
        let (body, mut st) = self.analyze_entity(name);
        let sites = std::mem::take(&mut st.rec_sites);
        let mut condemned = false;

        let vec = if let Some(bad) = sites.iter().find(|s| s.dec_self.is_none()) {
            condemned = true;
            st.diags.push(
                Diagnostic::new(
                    Code::UnboundedRecursion,
                    bad.span,
                    format!(
                        "`{name}` calls itself without a decreasing measure; \
                         recursion is statically unbounded"
                    ),
                )
                .with_help(
                    "guard the call with `IF p > k` and pass `p - c` (constant c > 0) \
                     for the same parameter p",
                ),
            );
            widen_all(&body)
        } else if sites.is_empty() {
            body
        } else {
            let (m0, _, _) = sites[0].dec_self.clone().expect("checked above");
            if sites
                .iter()
                .any(|s| s.dec_self.as_ref().map(|(m, _, _)| m) != Some(&m0))
            {
                condemned = true;
                st.diags.push(
                    Diagnostic::new(
                        Code::UnboundedRecursion,
                        ent_span,
                        format!(
                            "recursive calls of `{name}` do not agree on one \
                             decreasing parameter; no common measure exists"
                        ),
                    )
                    .with_help("decrease the same parameter at every recursive call"),
                );
                widen_all(&body)
            } else {
                let c_min = sites
                    .iter()
                    .filter_map(|s| s.dec_self.as_ref().map(|(_, c, _)| *c))
                    .fold(f64::INFINITY, f64::min);
                let k_min = sites
                    .iter()
                    .filter_map(|s| s.dec_self.as_ref().map(|(_, _, k)| *k))
                    .fold(f64::INFINITY, f64::min);
                // Depth: the measure starts at m, stops at k, shrinks by
                // ≥ c per level — (m - k)/c + 2 with rounding headroom,
                // at least one activation.
                let depth = Affine::param(&m0)
                    .scale(1.0 / c_min)
                    .add(&Affine::constant(2.0 - k_min / c_min))
                    .cw_max(&Affine::constant(1.0));
                let levels = Bound::Finite(depth);
                let single = sites.len() == 1 && !sites[0].in_loop;
                if !single {
                    st.note_widen(
                        ent_span,
                        format!(
                            "`{name}` is tree-recursive (several recursive call sites); \
                             it terminates but has no affine cost bound"
                        ),
                    );
                }
                let growth = if single {
                    levels.clone()
                } else {
                    Bound::Unbounded
                };
                CostVec {
                    fuel: body.fuel.mul(&growth),
                    fuel_lo: body.fuel_lo,
                    steps: body.steps.mul(&growth),
                    shapes: body.shapes.mul(&growth),
                    depth: levels.add(&body.depth),
                    choices: body.choices.mul(&growth),
                    combos: pow_bound(&body.combos, &growth),
                }
            }
        };
        self.finish(name, vec, st, condemned, per_file);
    }

    fn analyze_mutual(&mut self, comp: &[String], per_file: &mut [Vec<Diagnostic>]) {
        let mut analyzed: Vec<(String, CostVec, ScopeState)> = Vec::new();
        let mut scc_ok = true;
        for name in comp {
            let (vec, st) = self.analyze_entity(name);
            if st.rec_sites.iter().any(|s| s.dec_any.is_none()) {
                scc_ok = false;
            }
            analyzed.push((name.clone(), vec, st));
        }
        // Layers flow around the cycle: union every member's set.
        let mut cycle_layers = BTreeSet::new();
        let mut cycle_exact = true;
        let mut cycle_array = false;
        for (_, _, st) in &analyzed {
            cycle_layers.extend(st.layers.iter().cloned());
            cycle_exact &= st.layers_exact;
            cycle_array |= st.assumes_array_cuts;
        }
        for (name, body, mut st) in analyzed {
            st.layers = cycle_layers.clone();
            st.layers_exact = cycle_exact;
            st.assumes_array_cuts = cycle_array;
            let sites = std::mem::take(&mut st.rec_sites);
            let condemned = !scc_ok;
            if condemned {
                if let Some(bad) = sites.iter().find(|s| s.dec_any.is_none()) {
                    st.diags.push(
                        Diagnostic::new(
                            Code::UnboundedRecursion,
                            bad.span,
                            format!(
                                "`{name}` and `{}` recurse mutually without a \
                                 decreasing measure; recursion is statically unbounded",
                                bad.callee
                            ),
                        )
                        .with_help(
                            "guard each cycle call with `IF p > k` and pass a \
                             strictly smaller value",
                        ),
                    );
                } else {
                    let other = comp
                        .iter()
                        .find(|n| *n != &name)
                        .cloned()
                        .unwrap_or_default();
                    st.diags.push(Diagnostic::new(
                        Code::UnboundedRecursion,
                        self.entities[&name].0.span,
                        format!(
                            "`{name}` participates in a recursion cycle with `{other}` \
                             that has no decreasing measure"
                        ),
                    ));
                }
            } else {
                st.note_widen(
                    self.entities[&name].0.span,
                    format!(
                        "`{name}` is mutually recursive; the cycle terminates but \
                         has no affine cost bound"
                    ),
                );
            }
            let vec = widen_all(&body);
            self.finish(&name, vec, st, condemned, per_file);
        }
    }

    /// Emits scope diagnostics and stores the finished cost.
    fn finish(
        &mut self,
        name: &str,
        vec: CostVec,
        st: ScopeState,
        condemned: bool,
        per_file: &mut [Vec<Diagnostic>],
    ) {
        let (ent, file) = self.entities[name];
        let mut diags = st.diags;
        if !condemned {
            if let Some(f) = self.opts.fuel {
                if !st.e502_local && vec.fuel_lo > f as f64 {
                    diags.push(certain_exhaustion(ent.span, name, vec.fuel_lo, f));
                }
            }
            if !vec.fuel.is_finite() {
                let (span, why) = st.widen.clone().unwrap_or_else(|| {
                    (
                        ent.span,
                        format!("`{name}` has no derivable static cost bound"),
                    )
                });
                diags.push(no_static_bound(span, why));
            }
        }
        if let Some(i) = file {
            per_file[i].extend(diags);
        }
        self.costs.insert(
            name.to_string(),
            EntityCost {
                vec,
                layers: st.layers,
                layers_exact: st.layers_exact,
                assumes_array_cuts: st.assumes_array_cuts,
                condemned,
            },
        );
    }

    fn analyze_top(
        &mut self,
        top: &[Stmt],
        file: usize,
        per_file: &mut [Vec<Diagnostic>],
    ) -> CostCertificate {
        let mut st = ScopeState::new(HashSet::new());
        let mut env = Env::new();
        let vec = self.block(top, &mut env, &[], &mut st);
        let mut diags = std::mem::take(&mut st.diags);
        if let Some(f) = self.opts.fuel {
            if !st.e502_local && vec.fuel_lo > f as f64 {
                diags.push(certain_exhaustion(
                    Span::NONE,
                    "the top level",
                    vec.fuel_lo,
                    f,
                ));
            }
        }
        if !vec.fuel.is_finite() {
            if let Some((span, why)) = st.widen.clone() {
                diags.push(no_static_bound(span, why));
            }
        }
        per_file[file].extend(diags);
        let cost = EntityCost {
            vec,
            layers: st.layers,
            layers_exact: st.layers_exact,
            assumes_array_cuts: st.assumes_array_cuts,
            condemned: false,
        };
        to_cert(&cost, Vec::new())
    }

    // ----- statement abstraction ----------------------------------------

    fn block(
        &mut self,
        stmts: &[Stmt],
        env: &mut Env,
        guards: &[(String, f64)],
        st: &mut ScopeState,
    ) -> CostVec {
        let mut total = CostVec::zero();
        for s in stmts {
            let c = self.stmt(s, env, guards, st);
            total = total.seq(&c);
        }
        total
    }

    fn stmt(
        &mut self,
        s: &Stmt,
        env: &mut Env,
        guards: &[(String, f64)],
        st: &mut ScopeState,
    ) -> CostVec {
        match s {
            Stmt::Assign { name, value, .. } => {
                let calls = self.calls_cost(&[value], env, guards, st);
                let v = abs_value(value, env);
                env.insert(name.clone(), v);
                CostVec::stmt().seq(&calls)
            }
            Stmt::Call(c) => {
                let mut cost = CostVec::stmt();
                let arg_exprs: Vec<&Expr> = c
                    .positional
                    .iter()
                    .chain(c.keyword.iter().map(|(_, _, e)| e))
                    .collect();
                for e in arg_exprs {
                    cost = cost.seq(&self.calls_cost(&[e], env, guards, st));
                }
                cost.seq(&self.call_cost(c, env, guards, st))
            }
            Stmt::Compact { ignore, .. } => {
                for e in ignore {
                    match e {
                        Expr::Str(name, _) => {
                            st.layers.insert(name.clone());
                        }
                        Expr::Layer(_, name, _) => {
                            st.layers.insert(name.clone());
                        }
                        _ => st.layers_exact = false,
                    }
                }
                let mut c = CostVec::stmt();
                c.steps = Bound::constant(costmodel::COMPACT_STEPS_PER_STMT as f64);
                c
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                span,
            } => self.for_stmt(var, from, to, body, *span, env, guards, st),
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let cond_calls = self.calls_cost(&[cond], env, guards, st);
                let (then_f, else_f) = guard_facts(cond);
                let keep = |facts: Vec<(String, f64)>| -> Vec<(String, f64)> {
                    let mut g = guards.to_vec();
                    g.extend(facts.into_iter().filter(|(m, _)| st.stable.contains(m)));
                    g
                };
                let tg = keep(then_f);
                let eg = keep(else_f);
                let mut tenv = env.clone();
                let mut eenv = env.clone();
                let tc = self.block(then_body, &mut tenv, &tg, st);
                let ec = self.block(else_body, &mut eenv, &eg, st);
                *env = join_envs(&tenv, &eenv);
                CostVec::stmt().seq(&cond_calls).seq(&tc.join(&ec))
            }
            Stmt::Variant { arms, .. } => {
                if arms.is_empty() {
                    return CostVec::stmt();
                }
                let mut joined: Option<CostVec> = None;
                let mut combos_sum = Bound::constant(0.0);
                let mut envs: Vec<Env> = Vec::new();
                for arm in arms {
                    let mut aenv = env.clone();
                    let ac = self.block(arm, &mut aenv, guards, st);
                    combos_sum = combos_sum.add(&ac.combos);
                    envs.push(aenv);
                    joined = Some(match joined {
                        Some(j) => j.join(&ac),
                        None => ac,
                    });
                }
                if let Some(first) = envs.first() {
                    let merged = envs[1..]
                        .iter()
                        .fold(first.clone(), |acc, e| join_envs(&acc, e));
                    *env = merged;
                }
                let mut j = joined.unwrap_or_else(CostVec::zero);
                // One run executes one arm; the decision point itself
                // multiplies explored combinations by the arm count.
                j.choices = j.choices.add(&Bound::constant(1.0));
                j.combos = combos_sum;
                CostVec::stmt().seq(&j)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn for_stmt(
        &mut self,
        var: &str,
        from: &Expr,
        to: &Expr,
        body: &[Stmt],
        span: Span,
        env: &mut Env,
        guards: &[(String, f64)],
        st: &mut ScopeState,
    ) -> CostVec {
        let bound_calls = self.calls_cost(&[from, to], env, guards, st);
        let from_iv = abs_expr(from, env);
        let to_iv = abs_expr(to, env);

        // trips ≤ round(to) − round(from) + 1 ≤ to_hi − from_lo + slack.
        let trips_hi = match (&to_iv.hi, &from_iv.lo) {
            (Some(hi), Some(lo)) => Bound::Finite(
                hi.sub(lo)
                    .add(&Affine::constant(costmodel::FOR_TRIP_SLACK))
                    .max_zero(),
            ),
            _ => Bound::Unbounded,
        };
        if !trips_hi.is_finite() {
            st.note_widen(span, "loop bound is not statically bounded".to_string());
        }
        let trips_lo = match (from_iv.as_constant(), to_iv.as_constant()) {
            (Some(a), Some(b)) => (b.round() - a.round() + 1.0).max(0.0),
            _ => 0.0,
        };

        // Havoc everything the body can assign, pin the counter to its
        // hull, then abstract the body once (single-pass widening).
        let mut assigned = HashSet::new();
        assigned_vars(body, &mut assigned);
        for v in &assigned {
            env.insert(v.clone(), AbsVal::Num(Interval::top()));
        }
        env.insert(
            var.to_string(),
            AbsVal::Num(Interval {
                lo: from_iv.lo.clone(),
                hi: to_iv.hi.clone(),
            }),
        );
        st.loop_depth += 1;
        let body_cost = self.block(body, env, guards, st);
        st.loop_depth -= 1;
        for v in assigned {
            env.insert(v, AbsVal::Num(Interval::top()));
        }

        let repeated = body_cost.repeat(&trips_hi, trips_lo);
        if body_cost.fuel.is_finite() && trips_hi.is_finite() && !repeated.fuel.is_finite() {
            st.note_widen(
                span,
                "loop bound and body cost both depend on parameters; \
                 the total is not affine"
                    .to_string(),
            );
        }

        // E502: this loop alone certainly exceeds the configured fuel.
        if let Some(f) = self.opts.fuel {
            let loop_lo = trips_lo * body_cost.fuel_lo;
            if loop_lo > f as f64 {
                st.e502_local = true;
                st.diags.push(
                    Diagnostic::new(
                        Code::CertainExhaustion,
                        span,
                        format!(
                            "this loop alone consumes at least {} fuel; the \
                             configured limit of {f} is certain to be exhausted",
                            loop_lo as u64
                        ),
                    )
                    .with_help("shrink the loop range or raise the fuel budget"),
                );
            } else if let Bound::Finite(t) = &trips_hi {
                // W504: at the maximum declared parameter range the trip
                // bound exceeds the fuel.
                if !t.is_constant() {
                    let box_: BTreeMap<String, (f64, f64)> = t
                        .terms
                        .keys()
                        .map(|p| (p.clone(), (0.0, self.opts.param_hi)))
                        .collect();
                    if let Some(v) = t.eval_max(&box_) {
                        if v > f as f64 {
                            st.diags.push(
                                Diagnostic::new(
                                    Code::LoopExceedsFuel,
                                    span,
                                    format!(
                                        "loop may run up to {} times for parameters up \
                                         to {}; the configured fuel is {f}",
                                        v.ceil() as u64,
                                        self.opts.param_hi as u64
                                    ),
                                )
                                .with_help("bound the parameter, or raise the fuel budget"),
                            );
                        }
                    }
                }
            }
        }

        CostVec::stmt().seq(&bound_calls).seq(&repeated)
    }

    /// Cost of every call found inside the given expressions (nested
    /// arguments included).
    fn calls_cost(
        &mut self,
        exprs: &[&Expr],
        env: &Env,
        guards: &[(String, f64)],
        st: &mut ScopeState,
    ) -> CostVec {
        let mut calls: Vec<&Call> = Vec::new();
        for e in exprs {
            walk_expr(e, &mut |ex| {
                if let Expr::Call(c) = ex {
                    calls.push(c);
                }
            });
        }
        let mut total = CostVec::zero();
        for c in calls {
            total = total.seq(&self.call_cost(c, env, guards, st));
        }
        total
    }

    /// Cost contribution of one call's *callee* (arguments are handled
    /// by the caller).
    fn call_cost(
        &mut self,
        c: &Call,
        env: &Env,
        guards: &[(String, f64)],
        st: &mut ScopeState,
    ) -> CostVec {
        // Layer arguments: literals are collected, anything else makes
        // the layer set inexact.
        for (expect, arg) in expectations(c, &self.a.sigs) {
            if expect == crate::analysis::Expect::Layer {
                match arg {
                    Expr::Str(name, _) => {
                        st.layers.insert(name.clone());
                    }
                    Expr::Layer(_, name, _) => {
                        st.layers.insert(name.clone());
                    }
                    _ => st.layers_exact = false,
                }
            }
        }

        if let Some(shape) = costmodel::builtin_shapes(&c.name) {
            let mut cost = CostVec::zero();
            cost.shapes = match shape {
                ShapeCost::Const(n) => Bound::constant(n as f64),
                ShapeCost::ArrayGrid => {
                    st.assumes_array_cuts = true;
                    Bound::constant(self.opts.max_array_cuts as f64)
                }
            };
            return cost;
        }

        if self.scc.contains(&c.name) {
            self.record_rec_site(c, guards, st);
            return CostVec::zero();
        }

        let Some(callee) = self.costs.get(&c.name) else {
            // Unknown callee: the run fails before it can cost anything
            // (pass 1 reports E001).
            return CostVec::zero();
        };
        let callee_vec = callee.vec.clone();
        let callee_layers = callee.layers.clone();
        let callee_exact = callee.layers_exact;
        let callee_array = callee.assumes_array_cuts;
        let callee_condemned = callee.condemned;

        st.layers.extend(callee_layers);
        st.layers_exact &= callee_exact;
        st.assumes_array_cuts |= callee_array;

        // Interval-valued arguments, keyed by callee parameter name.
        let params: Vec<String> = self.entities[&c.name]
            .0
            .params
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let mut args: BTreeMap<String, Interval> = BTreeMap::new();
        for (i, e) in c.positional.iter().enumerate() {
            if let Some(p) = params.get(i) {
                args.insert(p.clone(), abs_expr(e, env));
            }
        }
        for (k, _, e) in &c.keyword {
            args.insert(k.clone(), abs_expr(e, env));
        }

        let mut sub = |b: &Bound| -> Bound {
            match b.affine().map(|a| subst_all(a, &args)) {
                Some(Some(a)) => Bound::Finite(a),
                Some(None) => {
                    if !callee_condemned {
                        st.note_widen(
                            c.span,
                            format!(
                                "an argument of `{}` is not provably a bounded \
                                 non-negative value; its certificate cannot be \
                                 instantiated here",
                                c.name
                            ),
                        );
                    }
                    Bound::Unbounded
                }
                None => {
                    if !callee_condemned {
                        st.note_widen(
                            c.span,
                            format!("callee `{}` has no static cost bound", c.name),
                        );
                    }
                    Bound::Unbounded
                }
            }
        };
        CostVec {
            fuel: sub(&callee_vec.fuel),
            fuel_lo: callee_vec.fuel_lo,
            steps: sub(&callee_vec.steps),
            shapes: sub(&callee_vec.shapes),
            depth: Bound::constant(1.0).add(&sub(&callee_vec.depth)),
            choices: sub(&callee_vec.choices),
            combos: sub(&callee_vec.combos),
        }
    }

    /// Records a call into the current SCC, with its measure check.
    fn record_rec_site(&mut self, c: &Call, guards: &[(String, f64)], st: &mut ScopeState) {
        let callee_params: Vec<String> = self.entities[&c.name]
            .0
            .params
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let mut dec_self = None;
        let mut dec_any = None;
        let mut consider = |target: Option<&str>, e: &Expr, guards: &[(String, f64)]| {
            if let Some((m, step)) = decrement_of(e, &st.stable) {
                let k = guards
                    .iter()
                    .filter(|(g, _)| *g == m)
                    .map(|(_, k)| *k)
                    .fold(f64::INFINITY, f64::min);
                if k.is_finite() {
                    if dec_any.is_none() {
                        dec_any = Some((m.clone(), step, k));
                    }
                    if target == Some(m.as_str()) && dec_self.is_none() {
                        dec_self = Some((m, step, k));
                    }
                }
            }
        };
        for (i, e) in c.positional.iter().enumerate() {
            consider(callee_params.get(i).map(String::as_str), e, guards);
        }
        for (k, _, e) in &c.keyword {
            consider(Some(k.as_str()), e, guards);
        }
        st.rec_sites.push(RecSite {
            callee: c.name.clone(),
            span: c.span,
            in_loop: st.loop_depth > 0,
            dec_self,
            dec_any,
        });
    }
}

/// Widens every upper bound to unbounded (zero stays zero through the
/// `0 × unbounded = 0` product; a combo count of 1 stays 1).
fn widen_all(v: &CostVec) -> CostVec {
    CostVec {
        fuel: v.fuel.mul(&Bound::Unbounded),
        fuel_lo: v.fuel_lo,
        steps: v.steps.mul(&Bound::Unbounded),
        shapes: v.shapes.mul(&Bound::Unbounded),
        depth: Bound::Unbounded,
        choices: v.choices.mul(&Bound::Unbounded),
        combos: pow_bound(&v.combos, &Bound::Unbounded),
    }
}

fn certain_exhaustion(span: Span, what: &str, lo: f64, fuel: u64) -> Diagnostic {
    Diagnostic::new(
        Code::CertainExhaustion,
        span,
        format!(
            "every run of {what} consumes at least {} fuel; the configured \
             limit of {fuel} is certain to be exhausted",
            lo as u64
        ),
    )
    .with_help("shrink the program or raise the fuel budget")
}

fn no_static_bound(span: Span, why: String) -> Diagnostic {
    Diagnostic::new(Code::NoStaticBound, span, why)
        .with_help("only the dynamic budget bounds this program at run time")
}

/// Substitutes every parameter of `a` simultaneously with the maximizing
/// endpoint of its argument interval, producing an affine in the
/// *caller's* parameters. Fails when an argument is missing, unbounded
/// on the needed side, or not provably non-negative.
fn subst_all(a: &Affine, args: &BTreeMap<String, Interval>) -> Option<Affine> {
    let mut out = Affine::constant(a.k);
    for (p, c) in &a.terms {
        if *c == 0.0 {
            continue;
        }
        let iv = args.get(p)?;
        let lo = iv.lo.as_ref()?;
        // The soundness contract: the substituted value must live in the
        // non-negative orthant, provable when the lower endpoint has no
        // negative constant or coefficient.
        if lo.k < 0.0 || lo.terms.values().any(|c| *c < 0.0) {
            return None;
        }
        let end = if *c > 0.0 { iv.hi.as_ref()? } else { lo };
        out = out.add(&end.scale(*c));
    }
    Some(out)
}

/// The names every call in an entity body can target.
fn calls_of(e: &Entity) -> HashSet<String> {
    let mut out = HashSet::new();
    crate::analysis::walk_calls(&e.body, &mut |c| {
        out.insert(c.name.clone());
    });
    out
}

/// Tarjan's strongly connected components over the entity call graph,
/// emitted callees-first (reverse topological order of the condensation).
fn sccs(entities: &HashMap<String, (&Entity, Option<usize>)>) -> Vec<Vec<String>> {
    let mut names: Vec<&String> = entities.keys().collect();
    names.sort(); // deterministic traversal order
    let index_of: HashMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let adj: Vec<Vec<usize>> = names
        .iter()
        .map(|n| {
            let mut edges: Vec<usize> = calls_of(entities[n.as_str()].0)
                .iter()
                .filter_map(|callee| index_of.get(callee.as_str()).copied())
                .collect();
            edges.sort_unstable();
            edges
        })
        .collect();

    struct Tarjan<'g> {
        adj: &'g [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    impl Tarjan<'_> {
        fn visit(&mut self, v: usize) {
            self.index[v] = Some(self.next);
            self.low[v] = self.next;
            self.next += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for &w in &self.adj[v] {
                if self.index[w].is_none() {
                    self.visit(w);
                    self.low[v] = self.low[v].min(self.low[w]);
                } else if self.on_stack[w] {
                    self.low[v] = self.low[v].min(self.index[w].expect("visited"));
                }
            }
            if Some(self.low[v]) == self.index[v] {
                let mut comp = Vec::new();
                while let Some(w) = self.stack.pop() {
                    self.on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                self.out.push(comp);
            }
        }
    }
    let n = names.len();
    let mut t = Tarjan {
        adj: &adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if t.index[v].is_none() {
            t.visit(v);
        }
    }
    t.out
        .into_iter()
        .map(|comp| comp.into_iter().map(|i| names[i].clone()).collect())
        .collect()
}

//! Pass 4 — dead code and unused parameters.
//!
//! Flags entity parameters never referenced in their body (W301) and
//! entity-local variables assigned but never read (W302) — top-level
//! variables are exempt, they are the program's outputs, as are `FOR`
//! loop counters, which idiomatically just count. Constant `IF`
//! conditions make a branch statically unreachable (W303), and a
//! `VARIANT` arm that repeats an earlier arm verbatim can never rate
//! differently, so the backtracking search explores it for nothing
//! (W304).

use std::collections::{HashMap, HashSet};

use amgen_dsl::ast::{strip_spans, Expr, Program, Stmt};
use amgen_dsl::span::Span;

use crate::analysis::{fold, scopes, walk_exprs_in_stmt, walk_stmts, Analysis};
use crate::diag::{Code, Diagnostic};

pub(crate) fn run(prog: &Program, _a: &Analysis, out: &mut Vec<Diagnostic>) {
    for e in &prog.entities {
        // Every name read anywhere in the body.
        let mut used: HashSet<&str> = HashSet::new();
        walk_stmts(&e.body, &mut |s| {
            if let Stmt::Compact { obj, .. } = s {
                used.insert(obj.as_str());
            }
            walk_exprs_in_stmt(s, &mut |ex| {
                if let Expr::Var(v, _) = ex {
                    used.insert(v.as_str());
                }
            });
        });

        for p in &e.params {
            if !used.contains(p.name.as_str()) {
                out.push(
                    Diagnostic::new(
                        Code::UnusedParam,
                        p.span,
                        format!("parameter `{}` of `{}` is never used", p.name, e.name),
                    )
                    .with_help("remove it or wire it into the body"),
                );
            }
        }

        // First assignment site per never-read local.
        let params: HashSet<&str> = e.params.iter().map(|p| p.name.as_str()).collect();
        let mut first_assign: HashMap<&str, Span> = HashMap::new();
        walk_stmts(&e.body, &mut |s| {
            if let Stmt::Assign { name, span, .. } = s {
                first_assign.entry(name.as_str()).or_insert(*span);
            }
        });
        let mut unused: Vec<(&str, Span)> = first_assign
            .into_iter()
            .filter(|(name, _)| !used.contains(name) && !params.contains(name))
            .collect();
        unused.sort_by_key(|(_, span)| span.start);
        for (name, span) in unused {
            out.push(
                Diagnostic::new(
                    Code::UnusedVar,
                    span,
                    format!("`{name}` is assigned but never read"),
                )
                .with_help("drop the assignment or use the value"),
            );
        }
    }

    // W303 / W304 apply everywhere, top level included.
    for scope in scopes(prog) {
        walk_stmts(scope.body, &mut |s| match s {
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => {
                if let Some(v) = fold(cond) {
                    let truthy = v != 0.0;
                    let dead = if truthy { else_body } else { then_body };
                    if !dead.is_empty() {
                        out.push(
                            Diagnostic::new(
                                Code::UnreachableBranch,
                                *span,
                                format!(
                                    "condition is always {}; the {} branch is unreachable",
                                    if truthy { "true" } else { "false" },
                                    if truthy { "ELSE" } else { "THEN" },
                                ),
                            )
                            .with_help("remove the branch or make the condition depend on inputs"),
                        );
                    }
                }
            }
            Stmt::Variant { arms, span } => {
                let canonical: Vec<Program> = arms
                    .iter()
                    .map(|arm| {
                        let mut p = Program {
                            top: arm.clone(),
                            entities: Vec::new(),
                        };
                        strip_spans(&mut p);
                        p
                    })
                    .collect();
                for j in 1..arms.len() {
                    if let Some(i) = (0..j).find(|&i| canonical[i] == canonical[j]) {
                        let at = arms[j].first().map(|s| s.span()).unwrap_or(*span);
                        out.push(
                            Diagnostic::new(
                                Code::RedundantVariant,
                                at,
                                format!(
                                    "variant arm {} repeats arm {}; backtracking explores it \
                                     for nothing",
                                    j + 1,
                                    i + 1
                                ),
                            )
                            .with_help("delete the duplicate arm"),
                        );
                    }
                }
            }
            _ => {}
        });
    }
}

//! Pass 2 — flow-insensitive kind inference over value kinds.
//!
//! Tracks the kind (number, string, layer, object) each variable could
//! hold, walking straight through the statement list and merging at
//! control-flow joins (conflicting kinds become unknown). Flags operator
//! misuse — arithmetic on strings or objects (E101) — and arguments whose
//! kind cannot fit the callee's parameter (E102): a number where a layer
//! is required, an object used as a dimension, `compact` applied to a
//! non-object.

use std::collections::HashMap;

use amgen_dsl::ast::{Call, Expr, Program, Stmt};

use crate::analysis::{scopes, Analysis, Expect};
use crate::diag::{Code, Diagnostic};

/// The linter's value-kind lattice; `Unknown` is the top element and
/// never produces a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Num,
    Str,
    Layer,
    Obj,
    Unknown,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Num => "a number",
            Kind::Str => "a string",
            Kind::Layer => "a layer",
            Kind::Obj => "an object",
            Kind::Unknown => "an unknown value",
        }
    }

    /// Can a value of this kind appear where `expect` is required?
    /// (`Unset` flows everywhere at runtime, hence `Unknown` always fits.)
    fn fits(self, expect: Expect) -> bool {
        match expect {
            Expect::Layer => matches!(self, Kind::Str | Kind::Layer | Kind::Unknown),
            Expect::Num => matches!(self, Kind::Num | Kind::Unknown),
            // Layer handles keep their spelling, so they satisfy string
            // contexts (net names shadowed by layer names).
            Expect::Str => matches!(self, Kind::Str | Kind::Layer | Kind::Unknown),
            Expect::Any => true,
        }
    }
}

type Env = HashMap<String, Kind>;

pub(crate) fn run(prog: &Program, a: &Analysis, out: &mut Vec<Diagnostic>) {
    for scope in scopes(prog) {
        let mut env: Env = Env::new();
        if let Some(e) = scope.entity {
            let sig = a.sigs.get(&e.name);
            for p in &e.params {
                let is_layer = sig
                    .map(|s| s.params.iter().any(|q| q.name == p.name && q.is_layer))
                    .unwrap_or(false);
                env.insert(
                    p.name.clone(),
                    if is_layer { Kind::Layer } else { Kind::Unknown },
                );
            }
        }
        check_block(scope.body, &mut env, a, out);
    }
}

fn check_block(stmts: &[Stmt], env: &mut Env, a: &Analysis, out: &mut Vec<Diagnostic>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { name, value, .. } => {
                let k = kind_of(value, env, a, out);
                env.insert(name.clone(), k);
            }
            Stmt::Call(c) => {
                check_call(c, env, a, out);
            }
            Stmt::Compact {
                obj, ignore, span, ..
            } => {
                if let Some(k) = env.get(obj) {
                    if !matches!(k, Kind::Obj | Kind::Unknown) {
                        out.push(
                            Diagnostic::new(
                                Code::ArgKindMismatch,
                                *span,
                                format!("`{obj}` holds {} but compact needs an object", k.name()),
                            )
                            .with_help("assign it an entity instantiation first"),
                        );
                    }
                }
                for e in ignore {
                    let k = kind_of(e, env, a, out);
                    if !k.fits(Expect::Layer) {
                        out.push(Diagnostic::new(
                            Code::ArgKindMismatch,
                            e.span(),
                            format!("ignore list expects layer names, found {}", k.name()),
                        ));
                    }
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                for bound in [from, to] {
                    let k = kind_of(bound, env, a, out);
                    if !k.fits(Expect::Num) {
                        out.push(Diagnostic::new(
                            Code::KindMismatch,
                            bound.span(),
                            format!("FOR bound must be a number, found {}", k.name()),
                        ));
                    }
                }
                env.insert(var.clone(), Kind::Num);
                check_block(body, env, a, out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                kind_of(cond, env, a, out);
                let mut then_env = env.clone();
                check_block(then_body, &mut then_env, a, out);
                let mut else_env = env.clone();
                check_block(else_body, &mut else_env, a, out);
                merge(env, then_env);
                merge(env, else_env);
            }
            Stmt::Variant { arms, .. } => {
                let snapshots: Vec<Env> = arms
                    .iter()
                    .map(|arm| {
                        let mut arm_env = env.clone();
                        check_block(arm, &mut arm_env, a, out);
                        arm_env
                    })
                    .collect();
                for s in snapshots {
                    merge(env, s);
                }
            }
        }
    }
}

/// Joins a branch environment into the base: a variable bound to
/// different kinds on different paths degrades to `Unknown`.
fn merge(base: &mut Env, branch: Env) {
    for (name, k) in branch {
        match base.get(&name) {
            None => {
                base.insert(name, k);
            }
            Some(existing) if *existing == k => {}
            Some(_) => {
                base.insert(name, Kind::Unknown);
            }
        }
    }
}

fn kind_of(e: &Expr, env: &Env, a: &Analysis, out: &mut Vec<Diagnostic>) -> Kind {
    match e {
        Expr::Number(..) => Kind::Num,
        Expr::Str(..) => Kind::Str,
        Expr::Layer(..) => Kind::Layer,
        Expr::Var(name, _) => env.get(name).copied().unwrap_or(Kind::Unknown),
        Expr::Neg(inner, _) => {
            let k = kind_of(inner, env, a, out);
            if !k.fits(Expect::Num) {
                out.push(Diagnostic::new(
                    Code::KindMismatch,
                    inner.span(),
                    format!("cannot negate {}", k.name()),
                ));
            }
            Kind::Num
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            for side in [lhs, rhs] {
                let k = kind_of(side, env, a, out);
                if !k.fits(Expect::Num) {
                    out.push(
                        Diagnostic::new(
                            Code::KindMismatch,
                            side.span(),
                            format!("cannot apply `{op}` to {}", k.name()),
                        )
                        .with_help("arithmetic and comparison work on numbers only"),
                    );
                }
            }
            Kind::Num
        }
        Expr::Call(c) => check_call(c, env, a, out),
    }
}

/// Checks a call's arguments against the callee's expectations and
/// returns the call's result kind: entity instantiations yield objects,
/// builtins yield nothing usable (unset).
fn check_call(c: &Call, env: &Env, a: &Analysis, out: &mut Vec<Diagnostic>) -> Kind {
    for (expect, arg) in crate::analysis::expectations(c, &a.sigs) {
        let k = kind_of(arg, env, a, out);
        if !k.fits(expect) {
            let what = match expect {
                Expect::Layer => "a layer name",
                Expect::Num => "a dimension (number)",
                Expect::Str => "a string",
                Expect::Any => unreachable!("Any fits every kind"),
            };
            out.push(Diagnostic::new(
                Code::ArgKindMismatch,
                arg.span(),
                format!("`{}` expects {what} here, found {}", c.name, k.name()),
            ));
        }
    }
    if a.sigs.contains_key(&c.name) {
        Kind::Obj
    } else {
        // Builtins return unset; unknown callees were reported by pass 1.
        Kind::Unknown
    }
}

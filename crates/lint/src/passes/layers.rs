//! Pass 3 — layer-name validation against the compiled rule kernel.
//!
//! Every statically-known layer-name literal — builtin layer arguments,
//! `compact` ignore lists, and arguments to entity parameters the
//! fixpoint proved flow into layer positions — is resolved against the
//! bound technology's [`RuleSet`] interning table. Misspellings get a
//! "did you mean" hint computed over the deck's actual layer names
//! (E201). The pass is skipped when the linter has no technology bound.

use amgen_dsl::ast::{Expr, Program, Stmt};
use amgen_dsl::span::Span;

use crate::analysis::{expectations, walk_calls, walk_stmts, Analysis, Expect};
use crate::diag::{Code, Diagnostic};

pub(crate) fn run(prog: &Program, a: &Analysis, out: &mut Vec<Diagnostic>) {
    let Some(rules) = a.rules else {
        return;
    };

    let check = |name: &str, span: Span, out: &mut Vec<Diagnostic>| {
        if rules.layer(name).is_err() {
            let mut d = Diagnostic::new(
                Code::UnknownLayer,
                span,
                format!("unknown layer `{name}` (technology `{}`)", rules.name()),
            );
            let cands = rules.layers().map(|l| rules.layer_name(l));
            if let Some(s) = suggest_layer(name, cands) {
                d = d.with_help(format!("did you mean `{s}`?"));
            }
            out.push(d);
        }
    };

    let mut bodies: Vec<&[Stmt]> = vec![&prog.top];
    for e in &prog.entities {
        bodies.push(&e.body);
    }
    for body in bodies {
        walk_calls(body, &mut |c| {
            for (expect, arg) in expectations(c, &a.sigs) {
                if expect == Expect::Layer {
                    if let Expr::Str(s, span) = arg {
                        check(s, *span, out);
                    }
                }
            }
        });
        walk_stmts(body, &mut |s| {
            if let Stmt::Compact { ignore, .. } = s {
                for e in ignore {
                    if let Expr::Str(name, span) = e {
                        check(name, *span, out);
                    }
                }
            }
        });
    }
}

fn suggest_layer<'a>(name: &str, cands: impl Iterator<Item = &'a str>) -> Option<String> {
    crate::analysis::suggest(name, cands)
}

//! The analyzer's passes, in running order. Each pass is independent —
//! all run even when earlier ones report errors, so one lint invocation
//! shows everything at once. Only a parse failure (E000) short-circuits:
//! there is no AST to analyze.

pub(crate) mod consts;
pub(crate) mod cost;
pub(crate) mod deadcode;
pub(crate) mod kinds;
pub(crate) mod layers;
pub(crate) mod symbols;

//! `amgen-lint`: a multi-pass static analyzer for generator programs.
//!
//! The interpreter runs generator programs; this crate reads them. Six
//! passes walk the parsed AST **before** any geometry is built:
//!
//! 1. **Symbols** — unknown callees, arity and parameter-name checks,
//!    duplicate entities, reads no assignment reaches (E001–E008).
//! 2. **Kinds** — flow-insensitive inference over value kinds flags
//!    arithmetic on strings, objects used as dimensions (E101, E102).
//! 3. **Layers** — statically-known layer-name literals are resolved
//!    against the compiled [`RuleSet`] interning table, with "did you
//!    mean" hints (E201).
//! 4. **Dead code** — unused parameters and locals, unreachable `IF`
//!    branches, `VARIANT` arms the backtracker explores for nothing
//!    (W301–W304).
//! 5. **Constants** — folded division by zero, negative dimensions,
//!    statically empty loops (E401–W403).
//! 6. **Cost certification** — abstract interpretation derives a
//!    [`CostCertificate`] per entity (symbolic bounds on fuel, shapes,
//!    compaction steps, recursion depth, variant runs) and flags
//!    statically unbounded recursion or certain budget exhaustion
//!    (E501–W504).
//!
//! Every finding is a [`Diagnostic`] with a stable code and a byte-exact
//! [`Span`](amgen_dsl::span::Span); [`render()`] turns it into a
//! rustc-style snippet with carets.
//!
//! # Example
//!
//! ```
//! use amgen_lint::{Linter, Code};
//! use amgen_tech::Tech;
//!
//! let mut l = Linter::with_rules(Tech::bicmos_1u().compile_arc());
//! let diags = l.lint_source("x = ContactRow(layer = \"polyy\")\n");
//! assert!(diags.iter().any(|d| d.code == Code::UnknownCallee));
//! ```

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

use amgen_db::LayoutObject;
use amgen_dsl::ast::{Entity, Program};
use amgen_dsl::interp::{DslError, Interpreter};
use amgen_dsl::parser::parse;
use amgen_tech::RuleSet;

pub mod diag;
pub mod domain;
pub mod render;

mod analysis;
mod passes;

pub use diag::{Code, Diagnostic, Severity};
pub use passes::cost::{CertifyOptions, CostCertificate, CostReport};
pub use render::{certificates_json, render, render_all, render_certificates};

use analysis::{mark_layer_params, Analysis, EntitySig};

/// The analyzer. Holds an optional technology (for layer validation) and
/// a library of preloaded entity signatures (for cross-source calls).
#[derive(Default)]
pub struct Linter {
    rules: Option<Arc<RuleSet>>,
    library: Vec<Entity>,
    certify: CertifyOptions,
}

impl Linter {
    /// A linter with no technology bound — pass 3 (layer validation) is
    /// skipped, everything else runs.
    pub fn new() -> Linter {
        Linter::default()
    }

    /// A linter validating layer names against a compiled rule kernel.
    pub fn with_rules(rules: Arc<RuleSet>) -> Linter {
        Linter {
            rules: Some(rules),
            library: Vec::new(),
            certify: CertifyOptions::default(),
        }
    }

    /// Replaces the certification options (fuel limit for E502/W504,
    /// assumed parameter range, `ARRAY` cut ceiling).
    #[must_use]
    pub fn with_certify(mut self, certify: CertifyOptions) -> Linter {
        self.certify = certify;
        self
    }

    /// Preregisters the entities of a library source so programs that
    /// call across sources resolve (`DiffPair` needs `ContactRow`).
    /// Library entities are *not* linted and redefining one is not a
    /// duplicate — that mirrors the interpreter's reload semantics.
    pub fn load(&mut self, src: &str) -> Result<(), amgen_dsl::parser::ParseError> {
        let prog = parse(src)?;
        self.library.extend(prog.entities);
        Ok(())
    }

    /// Preregisters already-parsed entities (e.g. from a running
    /// [`Interpreter`]'s accumulated library).
    pub fn load_entities(&mut self, entities: impl IntoIterator<Item = Entity>) {
        self.library.extend(entities);
    }

    /// Lints one self-contained source. Convenience for
    /// [`Linter::lint_set`] with a single anonymous file.
    pub fn lint_source(&self, src: &str) -> Vec<Diagnostic> {
        self.lint_set(&[("<input>", src)]).pop().unwrap_or_default()
    }

    /// Lints a set of sources as one program: entities defined anywhere
    /// in the set are callable from every file, and defining the same
    /// entity twice within the set is a duplicate (W002). Returns one
    /// diagnostic list per input file, in order.
    pub fn lint_set(&self, files: &[(&str, &str)]) -> Vec<Vec<Diagnostic>> {
        self.certify_set(files).0
    }

    /// Certifies one self-contained source: diagnostics plus the cost
    /// report (the top-level certificate is `report.tops[0]`).
    pub fn certify_source(&self, src: &str) -> (Vec<Diagnostic>, CostReport) {
        let (mut per_file, report) = self.certify_set(&[("<input>", src)]);
        (per_file.pop().unwrap_or_default(), report)
    }

    /// Like [`Linter::lint_set`], additionally returning the cost
    /// certificates the sixth pass derived.
    pub fn certify_set(&self, files: &[(&str, &str)]) -> (Vec<Vec<Diagnostic>>, CostReport) {
        let mut per_file: Vec<Vec<Diagnostic>> = vec![Vec::new(); files.len()];
        let mut programs: Vec<Option<Program>> = Vec::with_capacity(files.len());
        for (i, (_, src)) in files.iter().enumerate() {
            match parse(src) {
                Ok(p) => programs.push(Some(p)),
                Err(e) => {
                    per_file[i].push(Diagnostic::new(
                        Code::SyntaxError,
                        e.span,
                        e.message.clone(),
                    ));
                    programs.push(None);
                }
            }
        }

        // Signature table: soft library entries first, then the set.
        let mut sigs: HashMap<String, EntitySig> = HashMap::new();
        for e in &self.library {
            sigs.insert(e.name.clone(), EntitySig::from_entity(e, None, true));
        }
        for (i, prog) in programs.iter().enumerate() {
            let Some(prog) = prog else { continue };
            for ent in &prog.entities {
                if let Some(prev) = sigs.get(&ent.name) {
                    if !prev.soft {
                        let mut d = Diagnostic::new(
                            Code::DuplicateEntity,
                            ent.span,
                            format!("entity `{}` is defined more than once", ent.name),
                        );
                        // A synthesized previous definition has no span;
                        // pointing at "line 0" would point nowhere.
                        let at = match prev.file {
                            Some(f) if f != i => Some(format!("{}:{}", files[f].0, prev.span.line)),
                            _ if !prev.span.is_none() => Some(format!("line {}", prev.span.line)),
                            _ => None,
                        };
                        d = d.with_help(match at {
                            Some(at) => {
                                format!("previous definition at {at}; the later definition wins")
                            }
                            None => "the later definition wins".to_string(),
                        });
                        per_file[i].push(d);
                    }
                }
                sigs.insert(
                    ent.name.clone(),
                    EntitySig::from_entity(ent, Some(i), false),
                );
            }
        }

        // Infer which entity parameters are layer names (fixpoint over
        // every body we can see, library included).
        let bodies: Vec<&Entity> = self
            .library
            .iter()
            .chain(programs.iter().flatten().flat_map(|p| p.entities.iter()))
            .collect();
        mark_layer_params(&bodies, &mut sigs);

        let a = Analysis {
            sigs,
            rules: self.rules.as_deref(),
        };
        for (i, prog) in programs.iter().enumerate() {
            let Some(prog) = prog else { continue };
            let out = &mut per_file[i];
            passes::symbols::run(prog, &a, out);
            passes::kinds::run(prog, &a, out);
            passes::layers::run(prog, &a, out);
            passes::deadcode::run(prog, &a, out);
            passes::consts::run(prog, &a, out);
        }
        let report = passes::cost::run(&self.library, &programs, &a, &self.certify, &mut per_file);
        for out in &mut per_file {
            out.sort_by_key(|d| (d.span.start, d.span.line, d.code));
            out.dedup();
        }
        (per_file, report)
    }
}

/// True when any diagnostic in the batch is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

// ----- interpreter front-end integration --------------------------------

/// Why a checked run refused to execute.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// The linter found errors (all diagnostics are included, warnings
    /// too, so callers can render the full picture).
    Lint(Vec<Diagnostic>),
    /// The static cost certificate exceeds the interpreter's budget —
    /// the run was refused at admission, before executing anything.
    Admission {
        /// The closed whole-run estimate derived from the certificate.
        estimate: amgen_core::CostEstimate,
        /// Which budget resource the certificate exceeds.
        reason: String,
    },
    /// The program linted clean (or warnings only) but failed at runtime.
    Run(DslError),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Lint(diags) => {
                let errors = diags.iter().filter(|d| d.is_error()).count();
                write!(f, "lint found {errors} error(s); program not run")
            }
            CheckError::Admission { reason, .. } => {
                write!(
                    f,
                    "certified cost exceeds the budget ({reason}); program not run"
                )
            }
            CheckError::Run(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Lints a source against an interpreter's technology and accumulated
/// entity library, without running it.
pub fn check(interp: &Interpreter, src: &str) -> Vec<Diagnostic> {
    let mut l = Linter::with_rules(Arc::clone(&interp.ctx().rules));
    l.load_entities(interp.entities().cloned());
    l.lint_source(src)
}

/// The opt-in `check` step for the interpreter front-end: lint first,
/// execute only when no *errors* were found (warnings pass through) and
/// the certified cost fits the interpreter's budget. A program the
/// certificate *proves* too expensive (fuel, recursion depth or
/// compaction steps above the budget) is refused without executing a
/// single statement; programs with no static bound run under the
/// dynamic budget as before.
pub fn checked_run(
    interp: &mut Interpreter,
    src: &str,
) -> Result<BTreeMap<String, LayoutObject>, CheckError> {
    checked_run_full(interp, src).1
}

/// [`checked_run`] with the non-blocking diagnostics kept: returns the
/// warnings the linter found (empty on a warning-free program) next to
/// the run result, so a serving front-end can echo them to the client
/// alongside the generated layouts instead of discarding them. On a
/// lint *rejection* the warnings list is empty — every diagnostic,
/// warnings included, travels inside [`CheckError::Lint`]. A refusal at
/// admission is metered on the context
/// ([`Metrics::add_admission_refused`](amgen_core::Metrics::add_admission_refused)),
/// so refusal counts surface in the same snapshot line as cache
/// hit/miss traffic.
#[allow(clippy::type_complexity)]
pub fn checked_run_full(
    interp: &mut Interpreter,
    src: &str,
) -> (
    Vec<Diagnostic>,
    Result<BTreeMap<String, LayoutObject>, CheckError>,
) {
    let mut l = Linter::with_rules(Arc::clone(&interp.ctx().rules));
    l.load_entities(interp.entities().cloned());
    let (diags, report) = l.certify_source(src);
    if has_errors(&diags) {
        return (Vec::new(), Err(CheckError::Lint(diags)));
    }
    if let Some(Some(cert)) = report.tops.first() {
        let estimate = cert.estimate(interp.max_variants);
        if let Err(e) = interp.ctx().limits.budget().admits(&estimate) {
            interp.ctx().metrics.add_admission_refused();
            return (
                diags,
                Err(CheckError::Admission {
                    estimate,
                    reason: e.to_string(),
                }),
            );
        }
    }
    let result = interp.run(src).map_err(CheckError::Run);
    (diags, result)
}

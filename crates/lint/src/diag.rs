//! Diagnostics: what a lint pass reports.

use amgen_dsl::span::Span;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but executable — the interpreter would proceed.
    Warning,
    /// The program cannot run correctly (or at all).
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The fixed catalogue of diagnostic codes. Hundreds group by pass:
/// `E0xx` symbols, `E1xx` kinds, `E2xx` layers, `W3xx` dead code,
/// `E4xx` constants, `E5xx`/`W5xx` cost certification. `E000` is
/// reserved for syntax errors surfaced through the linter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// E000: the source did not parse.
    SyntaxError,
    /// E001: call to a name that is neither a builtin nor a known entity.
    UnknownCallee,
    /// W002: an entity name is defined more than once in the linted set.
    DuplicateEntity,
    /// E003: more positional arguments than the callee has parameters.
    TooManyArgs,
    /// E004: keyword argument that matches no parameter of the callee.
    UnknownParam,
    /// E005: a required parameter is not supplied.
    MissingParam,
    /// W006: a variable is read before any assignment reaches it.
    UndefinedVar,
    /// W007: a parameter name repeats in an `ENT` header.
    DuplicateParam,
    /// E008: `compact` direction is not NORTH/SOUTH/EAST/WEST.
    BadDirection,
    /// E101: operator applied to an operand kind it cannot take.
    KindMismatch,
    /// E102: argument kind does not fit the callee's parameter.
    ArgKindMismatch,
    /// E201: a layer-name literal is not a layer of the technology.
    UnknownLayer,
    /// W301: an entity parameter is never used in its body.
    UnusedParam,
    /// W302: a variable assigned in an entity body is never read.
    UnusedVar,
    /// W303: an `IF` branch is statically unreachable.
    UnreachableBranch,
    /// W304: a `VARIANT` arm repeats an earlier arm verbatim.
    RedundantVariant,
    /// E401: constant division by zero.
    DivisionByZero,
    /// E402: a constant dimension is negative.
    NegativeDimension,
    /// W403: a `FOR` range is statically empty.
    EmptyLoop,
    /// E501: recursion with no decreasing measure — statically unbounded.
    UnboundedRecursion,
    /// E502: the certified *lower* bound already exhausts the configured
    /// budget; every run is certain to fail.
    CertainExhaustion,
    /// W503: no static cost bound is derivable; only the dynamic budget
    /// protects this program.
    NoStaticBound,
    /// W504: a loop's certified trip bound exceeds the configured fuel at
    /// the maximum declared parameter range.
    LoopExceedsFuel,
}

impl Code {
    /// Every code, in numeric order — fixtures iterate this to prove
    /// coverage.
    pub const ALL: &'static [Code] = &[
        Code::SyntaxError,
        Code::UnknownCallee,
        Code::DuplicateEntity,
        Code::TooManyArgs,
        Code::UnknownParam,
        Code::MissingParam,
        Code::UndefinedVar,
        Code::DuplicateParam,
        Code::BadDirection,
        Code::KindMismatch,
        Code::ArgKindMismatch,
        Code::UnknownLayer,
        Code::UnusedParam,
        Code::UnusedVar,
        Code::UnreachableBranch,
        Code::RedundantVariant,
        Code::DivisionByZero,
        Code::NegativeDimension,
        Code::EmptyLoop,
        Code::UnboundedRecursion,
        Code::CertainExhaustion,
        Code::NoStaticBound,
        Code::LoopExceedsFuel,
    ];

    /// The stable textual code (`E201`, `W301`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::SyntaxError => "E000",
            Code::UnknownCallee => "E001",
            Code::DuplicateEntity => "W002",
            Code::TooManyArgs => "E003",
            Code::UnknownParam => "E004",
            Code::MissingParam => "E005",
            Code::UndefinedVar => "W006",
            Code::DuplicateParam => "W007",
            Code::BadDirection => "E008",
            Code::KindMismatch => "E101",
            Code::ArgKindMismatch => "E102",
            Code::UnknownLayer => "E201",
            Code::UnusedParam => "W301",
            Code::UnusedVar => "W302",
            Code::UnreachableBranch => "W303",
            Code::RedundantVariant => "W304",
            Code::DivisionByZero => "E401",
            Code::NegativeDimension => "E402",
            Code::EmptyLoop => "W403",
            Code::UnboundedRecursion => "E501",
            Code::CertainExhaustion => "E502",
            Code::NoStaticBound => "W503",
            Code::LoopExceedsFuel => "W504",
        }
    }

    /// The code's intrinsic severity (`E` codes error, `W` codes warn).
    pub fn severity(self) -> Severity {
        if self.as_str().starts_with('E') {
            Severity::Error
        } else {
            Severity::Warning
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a code, where, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub code: Code,
    /// Error or warning (defaults to the code's intrinsic severity).
    pub severity: Severity,
    /// Offending source range ([`Span::NONE`] when no location applies).
    pub span: Span,
    /// Human explanation of the finding.
    pub message: String,
    /// Optional fix-it hint rendered as `= help: ...`.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A diagnostic at `span` with the code's default severity.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// True for error-severity findings.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity, self.code, self.message, self.span
        )
    }
}

//! Terminal renderer: rustc-style snippets with carets under the span,
//! plus text and JSON emitters for cost certificates.

use crate::diag::Diagnostic;
use crate::domain::Bound;
use crate::passes::cost::{CostCertificate, CostReport};

/// Renders one diagnostic against its source text.
///
/// ```text
/// error[E201]: unknown layer `polyy`
///  --> diffpair.amg:3:10
///   |
/// 3 |   INBOX("polyy")
///   |         ^^^^^^^
///   = help: did you mean `poly`?
/// ```
pub fn render(file: &str, src: &str, d: &Diagnostic) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
    if d.span.is_none() {
        out.push_str(&format!(" --> {file}\n"));
    } else {
        let line_no = d.span.line as usize;
        let col = d.span.col as usize;
        out.push_str(&format!(" --> {file}:{line_no}:{col}\n"));
        if let Some(text) = src.split('\n').nth(line_no - 1) {
            let text = text.trim_end_matches('\r');
            let gutter = line_no.to_string();
            let pad = " ".repeat(gutter.len());
            // Clamp the caret run to the visible line.
            let width = d.span.len().min(text.len().saturating_sub(col - 1)).max(1);
            out.push_str(&format!("{pad} |\n"));
            out.push_str(&format!("{gutter} | {text}\n"));
            out.push_str(&format!(
                "{pad} | {}{}\n",
                " ".repeat(col.saturating_sub(1)),
                "^".repeat(width)
            ));
        }
    }
    if let Some(help) = &d.help {
        out.push_str(&format!(" = help: {help}\n"));
    }
    out
}

/// Renders a batch of diagnostics followed by a one-line tally.
pub fn render_all(file: &str, src: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&render(file, src, d));
        out.push('\n');
    }
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.len() - errors;
    if !diags.is_empty() {
        out.push_str(&format!(
            "{file}: {errors} error(s), {warnings} warning(s)\n"
        ));
    }
    out
}

// ----- cost certificates ------------------------------------------------

/// One certificate as an indented text block (without a heading line).
fn push_certificate(out: &mut String, c: &CostCertificate, max_variants: usize) {
    let bound = |b: &Bound| format!("<= {b}");
    out.push_str(&format!("  fuel per run   {}\n", bound(&c.fuel)));
    out.push_str(&format!("  compact steps  {}\n", bound(&c.compact_steps)));
    out.push_str(&format!("  shapes         {}\n", bound(&c.shapes)));
    out.push_str(&format!("  recursion      {}\n", bound(&c.recursion)));
    out.push_str(&format!(
        "  variant runs   {} (interpreter cap {max_variants})\n",
        bound(&c.variant_runs)
    ));
    match c.total_fuel(max_variants).closed() {
        Some(v) => out.push_str(&format!("  total fuel     <= {}\n", v.ceil() as u64)),
        None => {
            // Parameter-dependent or unbounded: restate symbolically.
            let t = c.total_fuel(max_variants);
            out.push_str(&format!("  total fuel     {}\n", bound(&t)));
        }
    }
    let layers: Vec<&str> = c.layers.iter().map(String::as_str).collect();
    out.push_str(&format!(
        "  layers         {{{}}}{}\n",
        layers.join(", "),
        if c.layers_exact { "" } else { " (incomplete)" }
    ));
    if c.assumes_array_cuts {
        out.push_str("  note           shape bound assumes the ARRAY cut ceiling\n");
    }
}

/// Renders a [`CostReport`] as plain text: one block per entity, then
/// one per linted file's top level. `names` are the file names of the
/// linted set, parallel to `report.tops`.
pub fn render_certificates(names: &[&str], report: &CostReport, max_variants: usize) -> String {
    let mut out = String::new();
    for (name, c) in &report.entities {
        out.push_str(&format!("ENT {name}({})\n", c.params.join(", ")));
        push_certificate(&mut out, c, max_variants);
    }
    for (name, top) in names.iter().zip(&report.tops) {
        match top {
            Some(c) => {
                out.push_str(&format!("{name} (top level)\n"));
                push_certificate(&mut out, c, max_variants);
            }
            None => out.push_str(&format!(
                "{name} (top level): no certificate (parse error)\n"
            )),
        }
    }
    out
}

/// Escapes a string for a JSON literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A bound as a JSON value: a number when constant, the affine rendered
/// as a string when symbolic, `null` when unbounded.
fn json_bound(b: &Bound) -> String {
    match b.affine() {
        Some(a) => match a.as_constant() {
            Some(v) if v.fract() == 0.0 && v.abs() < 1e15 => format!("{}", v as i64),
            Some(v) => format!("{v}"),
            None => json_str(&a.to_string()),
        },
        None => "null".to_string(),
    }
}

fn json_certificate(c: &CostCertificate, max_variants: usize) -> String {
    let params: Vec<String> = c.params.iter().map(|p| json_str(p)).collect();
    let layers: Vec<String> = c.layers.iter().map(|l| json_str(l)).collect();
    let total = |b: Bound| match b.closed() {
        Some(v) => format!("{}", v.ceil() as u64),
        None => json_bound(&b),
    };
    format!(
        concat!(
            "{{\"params\":[{}],\"fuel\":{},\"compact_steps\":{},\"shapes\":{},",
            "\"recursion\":{},\"variant_runs\":{},\"total_fuel\":{},",
            "\"total_compact_steps\":{},\"total_shapes\":{},",
            "\"layers\":[{}],\"layers_exact\":{},\"assumes_array_cuts\":{}}}"
        ),
        params.join(","),
        json_bound(&c.fuel),
        json_bound(&c.compact_steps),
        json_bound(&c.shapes),
        json_bound(&c.recursion),
        json_bound(&c.variant_runs),
        total(c.total_fuel(max_variants)),
        total(c.total_compact_steps(max_variants)),
        total(c.total_shapes(max_variants)),
        layers.join(","),
        c.layers_exact,
        c.assumes_array_cuts,
    )
}

/// Renders a [`CostReport`] as a single JSON document (hand-rolled; the
/// workspace carries no serialization dependency). Constant bounds are
/// numbers, symbolic bounds strings like `"2*N + 5"`, unbounded `null`.
pub fn certificates_json(names: &[&str], report: &CostReport, max_variants: usize) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"max_variants\":{max_variants},\"entities\":{{"));
    let ents: Vec<String> = report
        .entities
        .iter()
        .map(|(name, c)| format!("{}:{}", json_str(name), json_certificate(c, max_variants)))
        .collect();
    out.push_str(&ents.join(","));
    out.push_str("},\"tops\":[");
    let tops: Vec<String> = names
        .iter()
        .zip(&report.tops)
        .map(|(name, top)| {
            let cert = match top {
                Some(c) => json_certificate(c, max_variants),
                None => "null".to_string(),
            };
            format!("{{\"file\":{},\"certificate\":{cert}}}", json_str(name))
        })
        .collect();
    out.push_str(&tops.join(","));
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Diagnostic};
    use amgen_dsl::span::Span;

    #[test]
    fn renders_caret_under_the_span() {
        let src = "x = 1\ny = \"polyy\"\n";
        // "polyy" with quotes: line 2, col 5, bytes 10..17.
        let d = Diagnostic::new(Code::UnknownLayer, Span::new(2, 5, 10, 17), "unknown layer")
            .with_help("did you mean `poly`?");
        let r = render("t.amg", src, &d);
        assert!(r.contains("error[E201]: unknown layer"), "{r}");
        assert!(r.contains(" --> t.amg:2:5"), "{r}");
        assert!(r.contains("2 | y = \"polyy\""), "{r}");
        assert!(r.contains("  |     ^^^^^^^"), "{r}");
        assert!(r.contains(" = help: did you mean `poly`?"), "{r}");
    }

    #[test]
    fn spanless_diagnostics_render_without_snippet() {
        let d = Diagnostic::new(Code::SyntaxError, Span::NONE, "boom");
        let r = render("t.amg", "", &d);
        assert!(r.contains("error[E000]: boom"), "{r}");
        assert!(!r.contains('^'), "{r}");
    }

    fn sample_report() -> CostReport {
        let l = crate::Linter::default();
        // Top-level code precedes entity definitions (ENT bodies run to
        // the next ENT or end of file).
        let src = "Row(n = 3)\n\nENT Row(n)\n  FOR i = 1 TO n\n    INBOX(\"poly\")\n  END\n";
        let (diags, report) = l.certify_source(src);
        assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
        report
    }

    #[test]
    fn certificate_text_lists_entities_and_tops() {
        let r = render_certificates(&["t.amg"], &sample_report(), 64);
        assert!(r.contains("ENT Row(n)"), "{r}");
        assert!(r.contains("t.amg (top level)"), "{r}");
        assert!(r.contains("fuel per run"), "{r}");
        // The loop body is affine in n: `2 + 2*n` (FOR + body, +1 trip slack).
        assert!(r.contains("n"), "{r}");
    }

    #[test]
    fn certificate_json_is_well_formed_and_closed_for_tops() {
        let r = certificates_json(&["t.amg"], &sample_report(), 64);
        assert!(r.starts_with('{') && r.ends_with('}'), "{r}");
        assert!(r.contains("\"Row\":{\"params\":[\"n\"]"), "{r}");
        assert!(r.contains("\"file\":\"t.amg\""), "{r}");
        // The top level has no free parameters, so totals close to numbers.
        let top = r.split("\"tops\":").nth(1).unwrap();
        assert!(!top.contains("\"total_fuel\":\""), "{r}");
        // Balanced braces (cheap well-formedness smoke; no parser on board).
        let open = r.matches('{').count();
        let close = r.matches('}').count();
        assert_eq!(open, close, "{r}");
    }

    #[test]
    fn json_strings_escape_quotes_and_control_chars() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}

//! Terminal renderer: rustc-style snippets with carets under the span.

use crate::diag::Diagnostic;

/// Renders one diagnostic against its source text.
///
/// ```text
/// error[E201]: unknown layer `polyy`
///  --> diffpair.amg:3:10
///   |
/// 3 |   INBOX("polyy")
///   |         ^^^^^^^
///   = help: did you mean `poly`?
/// ```
pub fn render(file: &str, src: &str, d: &Diagnostic) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
    if d.span.is_none() {
        out.push_str(&format!(" --> {file}\n"));
    } else {
        let line_no = d.span.line as usize;
        let col = d.span.col as usize;
        out.push_str(&format!(" --> {file}:{line_no}:{col}\n"));
        if let Some(text) = src.split('\n').nth(line_no - 1) {
            let text = text.trim_end_matches('\r');
            let gutter = line_no.to_string();
            let pad = " ".repeat(gutter.len());
            // Clamp the caret run to the visible line.
            let width = d.span.len().min(text.len().saturating_sub(col - 1)).max(1);
            out.push_str(&format!("{pad} |\n"));
            out.push_str(&format!("{gutter} | {text}\n"));
            out.push_str(&format!(
                "{pad} | {}{}\n",
                " ".repeat(col.saturating_sub(1)),
                "^".repeat(width)
            ));
        }
    }
    if let Some(help) = &d.help {
        out.push_str(&format!(" = help: {help}\n"));
    }
    out
}

/// Renders a batch of diagnostics followed by a one-line tally.
pub fn render_all(file: &str, src: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&render(file, src, d));
        out.push('\n');
    }
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.len() - errors;
    if !diags.is_empty() {
        out.push_str(&format!(
            "{file}: {errors} error(s), {warnings} warning(s)\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Diagnostic};
    use amgen_dsl::span::Span;

    #[test]
    fn renders_caret_under_the_span() {
        let src = "x = 1\ny = \"polyy\"\n";
        // "polyy" with quotes: line 2, col 5, bytes 10..17.
        let d = Diagnostic::new(Code::UnknownLayer, Span::new(2, 5, 10, 17), "unknown layer")
            .with_help("did you mean `poly`?");
        let r = render("t.amg", src, &d);
        assert!(r.contains("error[E201]: unknown layer"), "{r}");
        assert!(r.contains(" --> t.amg:2:5"), "{r}");
        assert!(r.contains("2 | y = \"polyy\""), "{r}");
        assert!(r.contains("  |     ^^^^^^^"), "{r}");
        assert!(r.contains(" = help: did you mean `poly`?"), "{r}");
    }

    #[test]
    fn spanless_diagnostics_render_without_snippet() {
        let d = Diagnostic::new(Code::SyntaxError, Span::NONE, "boom");
        let r = render("t.amg", "", &d);
        assert!(r.contains("error[E000]: boom"), "{r}");
        assert!(!r.contains('^'), "{r}");
    }
}

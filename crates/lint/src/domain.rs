//! The numeric abstract domain of the certification pass: affine
//! expressions over entity parameters, intervals with affine endpoints,
//! and symbolic upper bounds.
//!
//! # Soundness contract
//!
//! An [`Affine`] produced by the analyzer is an upper (or lower) bound
//! on a run-time quantity **for non-negative parameter values**. The
//! restriction comes from the join: the pointwise maximum of two affine
//! functions is not affine, so [`Affine::cw_max`] over-approximates it
//! with the coefficient-wise maximum — `max(3n, 5) ⊑ 3n + 5` — which
//! dominates the true maximum only on the non-negative orthant.
//! [`Affine::eval_max`]/[`Bound::instantiate`] therefore refuse
//! parameter intervals whose lower end is negative, and
//! [`Affine::subst`] widens to *unknown* when a substituted argument
//! cannot be proven non-negative. Dimensions, repetition counts and
//! trip counts are non-negative in every meaningful generator program,
//! so the restriction costs no precision in practice.

use std::collections::BTreeMap;

/// `k + Σ cᵢ·pᵢ`: a linear function of named entity parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Affine {
    /// The constant term.
    pub k: f64,
    /// Per-parameter coefficients (absent = 0), in name order so
    /// rendering is deterministic.
    pub terms: BTreeMap<String, f64>,
}

impl Affine {
    /// The constant `k`.
    pub fn constant(k: f64) -> Affine {
        Affine {
            k,
            terms: BTreeMap::new(),
        }
    }

    /// The parameter `p` itself (`0 + 1·p`).
    pub fn param(p: &str) -> Affine {
        Affine {
            k: 0.0,
            terms: [(p.to_string(), 1.0)].into_iter().collect(),
        }
    }

    /// True when no parameter has a non-zero coefficient.
    pub fn is_constant(&self) -> bool {
        self.terms.values().all(|c| *c == 0.0)
    }

    /// The constant value, if [`Affine::is_constant`].
    pub fn as_constant(&self) -> Option<f64> {
        self.is_constant().then_some(self.k)
    }

    /// Pointwise sum.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.k += other.k;
        for (p, c) in &other.terms {
            *out.terms.entry(p.clone()).or_insert(0.0) += c;
        }
        out.prune()
    }

    /// Pointwise difference.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1.0))
    }

    /// Multiplies every coefficient and the constant by `s`.
    pub fn scale(&self, s: f64) -> Affine {
        Affine {
            k: self.k * s,
            terms: self.terms.iter().map(|(p, c)| (p.clone(), c * s)).collect(),
        }
        .prune()
    }

    /// Product of two affines — defined only when at least one side is
    /// constant (the product is affine again); `None` otherwise (a
    /// genuinely quadratic bound, widened to unbounded by the caller).
    pub fn mul(&self, other: &Affine) -> Option<Affine> {
        if let Some(c) = self.as_constant() {
            Some(other.scale(c))
        } else {
            other.as_constant().map(|c| self.scale(c))
        }
    }

    /// Coefficient-wise maximum: an upper bound on the pointwise
    /// maximum of the two functions over non-negative parameters (see
    /// the module docs for why this needs the orthant restriction).
    pub fn cw_max(&self, other: &Affine) -> Affine {
        // A coefficient absent on one side is 0 there, so the max is
        // taken against 0 for parameters appearing on only one side.
        let mut terms = BTreeMap::new();
        for p in self.terms.keys().chain(other.terms.keys()) {
            let a = self.terms.get(p).copied().unwrap_or(0.0);
            let b = other.terms.get(p).copied().unwrap_or(0.0);
            let c = a.max(b);
            if c != 0.0 {
                terms.insert(p.clone(), c);
            }
        }
        Affine {
            k: self.k.max(other.k),
            terms,
        }
    }

    /// Coefficient-wise minimum: a lower bound on the pointwise minimum
    /// over non-negative parameters.
    pub fn cw_min(&self, other: &Affine) -> Affine {
        let mut terms = BTreeMap::new();
        for p in self.terms.keys().chain(other.terms.keys()) {
            let a = self.terms.get(p).copied().unwrap_or(0.0);
            let b = other.terms.get(p).copied().unwrap_or(0.0);
            let c = a.min(b);
            if c != 0.0 {
                terms.insert(p.clone(), c);
            }
        }
        Affine {
            k: self.k.min(other.k),
            terms,
        }
    }

    /// Clamps to a non-negative function: coefficient-wise max with the
    /// constant 0. Used for trip counts (`max(0, hi − lo + slack)`).
    pub fn max_zero(&self) -> Affine {
        self.cw_max(&Affine::constant(0.0))
    }

    /// Substitutes parameter `p` with an interval `[lo, hi]`, keeping
    /// the result an upper bound: the coefficient's sign picks the
    /// maximizing end. Requires `lo ≥ 0` when the coefficient is
    /// non-zero (the soundness contract); returns `None` otherwise.
    pub fn subst(&self, p: &str, lo: f64, hi: f64) -> Option<Affine> {
        let Some(c) = self.terms.get(p).copied() else {
            return Some(self.clone());
        };
        if c != 0.0 && lo < 0.0 {
            return None;
        }
        let mut out = self.clone();
        out.terms.remove(p);
        out.k += c * if c >= 0.0 { hi } else { lo };
        Some(out.prune())
    }

    /// Evaluates the maximum over a parameter box `{p: [lo, hi]}`.
    /// Parameters missing from the box, boxes with a negative lower
    /// end, or non-finite results yield `None`.
    pub fn eval_max(&self, box_: &BTreeMap<String, (f64, f64)>) -> Option<f64> {
        let mut v = self.k;
        for (p, c) in &self.terms {
            if *c == 0.0 {
                continue;
            }
            let (lo, hi) = box_.get(p).copied()?;
            if lo < 0.0 || lo > hi {
                return None;
            }
            v += c * if *c >= 0.0 { hi } else { lo };
        }
        v.is_finite().then_some(v)
    }

    /// Evaluates the minimum over a parameter box (same restrictions).
    pub fn eval_min(&self, box_: &BTreeMap<String, (f64, f64)>) -> Option<f64> {
        let mut v = self.k;
        for (p, c) in &self.terms {
            if *c == 0.0 {
                continue;
            }
            let (lo, hi) = box_.get(p).copied()?;
            if lo < 0.0 || lo > hi {
                return None;
            }
            v += c * if *c >= 0.0 { lo } else { hi };
        }
        v.is_finite().then_some(v)
    }

    /// Drops zero coefficients (canonical form for display and `==`).
    fn prune(mut self) -> Affine {
        self.terms.retain(|_, c| *c != 0.0);
        self
    }
}

impl std::fmt::Display for Affine {
    /// `12`, `3*n`, `5 + 2*W + L` — plain ASCII, stable order.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut wrote = false;
        if self.k != 0.0 || self.terms.is_empty() {
            write!(f, "{}", fmt_num(self.k))?;
            wrote = true;
        }
        for (p, c) in &self.terms {
            if *c == 0.0 {
                continue;
            }
            if wrote {
                write!(f, " {} ", if *c < 0.0 { "-" } else { "+" })?;
            } else if *c < 0.0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            if a == 1.0 {
                write!(f, "{p}")?;
            } else {
                write!(f, "{}*{p}", fmt_num(a))?;
            }
            wrote = true;
        }
        Ok(())
    }
}

/// Formats without a trailing `.0` for whole numbers.
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A symbolic upper bound: a finite affine function of the entity's
/// parameters, or no static bound at all.
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    /// Bounded by the affine for all non-negative parameter values.
    Finite(Affine),
    /// No static bound derivable (unbounded recursion, data-dependent
    /// loop, non-affine growth). The dynamic budget still applies.
    Unbounded,
}

impl Bound {
    /// The constant bound `k`.
    pub fn constant(k: f64) -> Bound {
        Bound::Finite(Affine::constant(k))
    }

    /// The finite affine, if any.
    pub fn affine(&self) -> Option<&Affine> {
        match self {
            Bound::Finite(a) => Some(a),
            Bound::Unbounded => None,
        }
    }

    /// True for [`Bound::Finite`].
    pub fn is_finite(&self) -> bool {
        matches!(self, Bound::Finite(_))
    }

    /// Sum (unbounded absorbs).
    pub fn add(&self, other: &Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.add(b)),
            _ => Bound::Unbounded,
        }
    }

    /// Product; widens to unbounded when both sides are parameter-
    /// dependent (the result would be quadratic) or either is unbounded
    /// — unless the other side is the constant 0.
    pub fn mul(&self, other: &Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => {
                a.mul(b).map_or(Bound::Unbounded, Bound::Finite)
            }
            (Bound::Finite(a), Bound::Unbounded) | (Bound::Unbounded, Bound::Finite(a)) => {
                if a.as_constant() == Some(0.0) {
                    Bound::constant(0.0)
                } else {
                    Bound::Unbounded
                }
            }
            _ => Bound::Unbounded,
        }
    }

    /// Join: an upper bound on the pointwise max (see [`Affine::cw_max`]).
    pub fn max(&self, other: &Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.cw_max(b)),
            _ => Bound::Unbounded,
        }
    }

    /// Largest value over a parameter box; `None` when unbounded or the
    /// box violates the non-negativity contract.
    pub fn instantiate(&self, box_: &BTreeMap<String, (f64, f64)>) -> Option<f64> {
        self.affine()?.eval_max(box_)
    }

    /// Instantiates a parameter-free bound (entity with no parameters,
    /// or a top-level scope).
    pub fn closed(&self) -> Option<f64> {
        self.instantiate(&BTreeMap::new())
    }
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Finite(a) => write!(f, "{a}"),
            Bound::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// An interval whose endpoints are affine in the entity parameters;
/// `None` means unbounded on that side. The abstract value of every
/// numeric expression in the certification pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Interval {
    /// Affine lower bound, `None` = −∞.
    pub lo: Option<Affine>,
    /// Affine upper bound, `None` = +∞.
    pub hi: Option<Affine>,
}

impl Interval {
    /// The completely unknown number.
    pub fn top() -> Interval {
        Interval { lo: None, hi: None }
    }

    /// The exact constant `k`.
    pub fn constant(k: f64) -> Interval {
        let a = Affine::constant(k);
        Interval {
            lo: Some(a.clone()),
            hi: Some(a),
        }
    }

    /// The parameter `p` exactly (`lo = hi = p`).
    pub fn param(p: &str) -> Interval {
        let a = Affine::param(p);
        Interval {
            lo: Some(a.clone()),
            hi: Some(a),
        }
    }

    /// The exact constant, when both ends agree on one.
    pub fn as_constant(&self) -> Option<f64> {
        let lo = self.lo.as_ref()?.as_constant()?;
        let hi = self.hi.as_ref()?.as_constant()?;
        (lo == hi).then_some(lo)
    }

    /// Interval sum.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: opt2(&self.lo, &other.lo, Affine::add),
            hi: opt2(&self.hi, &other.hi, Affine::add),
        }
    }

    /// Interval difference (`lo − other.hi`, `hi − other.lo`).
    pub fn sub(&self, other: &Interval) -> Interval {
        Interval {
            lo: opt2(&self.lo, &other.hi, Affine::sub),
            hi: opt2(&self.hi, &other.lo, Affine::sub),
        }
    }

    /// Negation.
    pub fn neg(&self) -> Interval {
        Interval {
            lo: self.hi.as_ref().map(|a| a.scale(-1.0)),
            hi: self.lo.as_ref().map(|a| a.scale(-1.0)),
        }
    }

    /// Product — precise only when one side is an exact constant
    /// (scaling); anything else goes to top. Parameter-dependent
    /// products are non-affine and the pass widens them anyway.
    pub fn mul(&self, other: &Interval) -> Interval {
        let scaled = |iv: &Interval, c: f64| -> Interval {
            let s = |a: &Option<Affine>| a.as_ref().map(|a| a.scale(c));
            if c >= 0.0 {
                Interval {
                    lo: s(&iv.lo),
                    hi: s(&iv.hi),
                }
            } else {
                Interval {
                    lo: s(&iv.hi),
                    hi: s(&iv.lo),
                }
            }
        };
        if let Some(c) = self.as_constant() {
            scaled(other, c)
        } else if let Some(c) = other.as_constant() {
            scaled(self, c)
        } else {
            Interval::top()
        }
    }

    /// Quotient — only division by an exact non-zero constant stays
    /// precise.
    pub fn div(&self, other: &Interval) -> Interval {
        match other.as_constant() {
            Some(c) if c != 0.0 => self.mul(&Interval::constant(1.0 / c)),
            _ => Interval::top(),
        }
    }

    /// Join of two intervals (IF branches): the hull, with the affine
    /// cw-max/cw-min over-approximation on each side.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: opt2(&self.lo, &other.lo, Affine::cw_min),
            hi: opt2(&self.hi, &other.hi, Affine::cw_max),
        }
    }
}

/// Combines two optional affines, `None` (unbounded) absorbing.
fn opt2(
    a: &Option<Affine>,
    b: &Option<Affine>,
    f: impl Fn(&Affine, &Affine) -> Affine,
) -> Option<Affine> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(a, b)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box1(p: &str, lo: f64, hi: f64) -> BTreeMap<String, (f64, f64)> {
        [(p.to_string(), (lo, hi))].into_iter().collect()
    }

    #[test]
    fn affine_arithmetic_and_display() {
        let a = Affine::constant(5.0).add(&Affine::param("n").scale(3.0));
        assert_eq!(a.to_string(), "5 + 3*n");
        assert_eq!(a.sub(&Affine::param("n")).to_string(), "5 + 2*n");
        assert_eq!(Affine::constant(0.0).to_string(), "0");
        assert_eq!(Affine::param("n").scale(-1.0).to_string(), "-n");
        assert!(a.mul(&Affine::constant(2.0)).unwrap().to_string() == "10 + 6*n");
        assert!(a.mul(&Affine::param("m")).is_none(), "quadratic");
    }

    #[test]
    fn cw_max_dominates_on_the_orthant() {
        // max(3n, 5) ⊑ 5 + 3n: dominate both arguments for n ≥ 0.
        let m = Affine::param("n").scale(3.0).cw_max(&Affine::constant(5.0));
        for n in [0.0, 1.0, 10.0] {
            let v = m.eval_max(&box1("n", n, n)).unwrap();
            assert!(v >= 3.0 * n && v >= 5.0, "n={n} v={v}");
        }
    }

    #[test]
    fn eval_refuses_negative_lows() {
        let a = Affine::param("n");
        assert_eq!(a.eval_max(&box1("n", -1.0, 5.0)), None);
        assert_eq!(a.eval_max(&box1("n", 0.0, 5.0)), Some(5.0));
        assert_eq!(a.eval_min(&box1("n", 0.0, 5.0)), Some(0.0));
        // Constants don't need the box at all.
        assert_eq!(Affine::constant(7.0).eval_max(&BTreeMap::new()), Some(7.0));
    }

    #[test]
    fn subst_is_maximizing_and_guarded() {
        let a = Affine::constant(1.0).add(&Affine::param("n").scale(2.0));
        assert_eq!(a.subst("n", 0.0, 4.0).unwrap().as_constant(), Some(9.0));
        let neg = a.scale(-1.0);
        assert_eq!(neg.subst("n", 0.0, 4.0).unwrap().as_constant(), Some(-1.0));
        assert!(a.subst("n", -1.0, 4.0).is_none(), "negative low refused");
        assert!(a.subst("m", -9.0, 9.0).is_some(), "absent param is free");
    }

    #[test]
    fn bound_algebra_widens_honestly() {
        let n = Bound::Finite(Affine::param("n"));
        let c = Bound::constant(3.0);
        assert_eq!(n.add(&c).to_string(), "3 + n");
        assert_eq!(n.mul(&c).to_string(), "3*n");
        assert_eq!(n.mul(&n), Bound::Unbounded);
        assert_eq!(n.add(&Bound::Unbounded), Bound::Unbounded);
        assert_eq!(
            Bound::constant(0.0).mul(&Bound::Unbounded).closed(),
            Some(0.0)
        );
        assert_eq!(Bound::Unbounded.to_string(), "unbounded");
    }

    #[test]
    fn interval_ops() {
        let n = Interval::param("n");
        let c2 = Interval::constant(2.0);
        let s = n.add(&c2); // [n+2, n+2]
        assert_eq!(s.hi.as_ref().unwrap().to_string(), "2 + n");
        let d = s.sub(&n); // [2, 2]
        assert_eq!(d.as_constant(), Some(2.0));
        assert_eq!(n.mul(&c2).hi.unwrap().to_string(), "2*n");
        assert_eq!(n.div(&c2).hi.unwrap().to_string(), "0.5*n");
        assert_eq!(n.div(&Interval::constant(0.0)), Interval::top());
        assert_eq!(n.neg().hi.unwrap().to_string(), "-n");
        let j = Interval::constant(1.0).join(&Interval::constant(5.0));
        assert_eq!(j.lo.unwrap().as_constant(), Some(1.0));
        assert_eq!(j.hi.unwrap().as_constant(), Some(5.0));
    }

    #[test]
    fn max_zero_drops_negative_contributions() {
        // 5 − n, clamped: 5 (constant), sound for n ≥ 0.
        let t = Affine::constant(5.0).sub(&Affine::param("n")).max_zero();
        assert_eq!(t.as_constant(), Some(5.0));
    }
}

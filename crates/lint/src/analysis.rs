//! Shared analysis infrastructure: callee signatures, argument
//! expectations, AST walkers, constant folding, name suggestions.

use std::collections::HashMap;

use amgen_dsl::ast::{BinOp, Call, Entity, Expr, Program, Stmt};
use amgen_dsl::span::Span;
use amgen_tech::RuleSet;

/// What a callee expects in one argument position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Expect {
    /// A layer name (string literal, layer handle, or layer-kind var).
    Layer,
    /// A dimension in micrometres.
    Num,
    /// Any string (net names).
    Str,
    /// Unconstrained (entity parameters with no inferred kind).
    Any,
}

/// One builtin parameter.
pub(crate) struct BuiltinArg {
    pub name: &'static str,
    pub expect: Expect,
    pub required: bool,
}

/// A builtin's full signature.
pub(crate) struct BuiltinSig {
    pub name: &'static str,
    pub args: &'static [BuiltinArg],
}

macro_rules! barg {
    ($name:literal, $expect:ident, $required:literal) => {
        BuiltinArg {
            name: $name,
            expect: Expect::$expect,
            required: $required,
        }
    };
}

/// The geometry builtins of the language, mirroring the interpreter's
/// dispatch table (`interp.rs::builtin`). Required/optional matches what
/// the runtime tolerates: layers must be present, dimensions default to
/// the design-rule minimum when unset.
pub(crate) const BUILTINS: &[BuiltinSig] = &[
    BuiltinSig {
        name: "INBOX",
        args: &[
            barg!("layer", Layer, true),
            barg!("W", Num, false),
            barg!("L", Num, false),
        ],
    },
    BuiltinSig {
        name: "ARRAY",
        args: &[barg!("layer", Layer, true)],
    },
    BuiltinSig {
        name: "AROUND",
        args: &[barg!("layer", Layer, true), barg!("extra", Num, false)],
    },
    BuiltinSig {
        name: "RING",
        args: &[
            barg!("layer", Layer, true),
            barg!("W", Num, false),
            barg!("clearance", Num, false),
        ],
    },
    BuiltinSig {
        name: "TWORECTS",
        args: &[
            barg!("a", Layer, true),
            barg!("b", Layer, true),
            barg!("W", Num, false),
            barg!("L", Num, false),
        ],
    },
    BuiltinSig {
        name: "NET",
        args: &[barg!("name", Str, true)],
    },
];

/// Looks up a builtin signature by name.
pub(crate) fn builtin(name: &str) -> Option<&'static BuiltinSig> {
    BUILTINS.iter().find(|b| b.name == name)
}

/// One entity parameter as the linter sees it.
#[derive(Debug, Clone)]
pub(crate) struct ParamSig {
    pub name: String,
    pub optional: bool,
    /// True once the fixpoint proves the parameter flows into a layer
    /// position inside the body.
    pub is_layer: bool,
}

/// An entity's callable surface.
#[derive(Debug, Clone)]
pub(crate) struct EntitySig {
    pub params: Vec<ParamSig>,
    /// Span of the defining `ENT` name.
    pub span: Span,
    /// Index of the defining file within the linted set (`None` for
    /// preloaded library entities).
    pub file: Option<usize>,
    /// Library entities are "soft": redefinition by a linted file is the
    /// interpreter's normal reload behaviour, not a duplicate.
    pub soft: bool,
}

impl EntitySig {
    pub fn from_entity(e: &Entity, file: Option<usize>, soft: bool) -> EntitySig {
        EntitySig {
            params: e
                .params
                .iter()
                .map(|p| ParamSig {
                    name: p.name.clone(),
                    optional: p.optional,
                    is_layer: false,
                })
                .collect(),
            span: e.span,
            file,
            soft,
        }
    }
}

/// Everything the passes share: the signature table and (optionally) the
/// compiled rule kernel for layer-name validation.
pub(crate) struct Analysis<'a> {
    pub sigs: HashMap<String, EntitySig>,
    pub rules: Option<&'a RuleSet>,
}

/// Resolves every argument of `call` to what the callee expects there.
/// Unknown callees and surplus arguments yield [`Expect::Any`] — pass 1
/// reports those separately.
pub(crate) fn expectations<'c>(
    call: &'c Call,
    sigs: &HashMap<String, EntitySig>,
) -> Vec<(Expect, &'c Expr)> {
    let mut out = Vec::new();
    if let Some(b) = builtin(&call.name) {
        for (i, e) in call.positional.iter().enumerate() {
            let expect = b.args.get(i).map_or(Expect::Any, |a| a.expect);
            out.push((expect, e));
        }
        for (k, _, e) in &call.keyword {
            let expect = b
                .args
                .iter()
                .find(|a| a.name == *k)
                .map_or(Expect::Any, |a| a.expect);
            out.push((expect, e));
        }
    } else if let Some(sig) = sigs.get(&call.name) {
        let expect_of = |p: &ParamSig| {
            if p.is_layer {
                Expect::Layer
            } else {
                Expect::Any
            }
        };
        for (i, e) in call.positional.iter().enumerate() {
            let expect = sig.params.get(i).map_or(Expect::Any, expect_of);
            out.push((expect, e));
        }
        for (k, _, e) in &call.keyword {
            let expect = sig
                .params
                .iter()
                .find(|p| p.name == *k)
                .map_or(Expect::Any, expect_of);
            out.push((expect, e));
        }
    } else {
        for e in &call.positional {
            out.push((Expect::Any, e));
        }
        for (_, _, e) in &call.keyword {
            out.push((Expect::Any, e));
        }
    }
    out
}

/// Marks entity parameters that flow into layer positions. Runs to a
/// fixpoint so a parameter forwarded through a chain of entity calls
/// (`E1.p` passed as `E2.layer` passed to `INBOX`) is still found.
pub(crate) fn mark_layer_params(entities: &[&Entity], sigs: &mut HashMap<String, EntitySig>) {
    loop {
        let mut updates: Vec<(String, String)> = Vec::new();
        for ent in entities {
            let Some(sig) = sigs.get(&ent.name) else {
                continue;
            };
            let param_names: Vec<&str> = sig.params.iter().map(|p| p.name.as_str()).collect();
            let mut candidates: Vec<String> = Vec::new();
            // `compact` ignore lists are layer positions too.
            walk_stmts(&ent.body, &mut |s| {
                if let Stmt::Compact { ignore, .. } = s {
                    for e in ignore {
                        if let Expr::Var(v, _) = e {
                            candidates.push(v.clone());
                        }
                    }
                }
            });
            walk_calls(&ent.body, &mut |c| {
                for (expect, arg) in expectations(c, sigs) {
                    if expect == Expect::Layer {
                        if let Expr::Var(v, _) = arg {
                            candidates.push(v.clone());
                        }
                    }
                }
            });
            for v in candidates {
                if param_names.contains(&v.as_str()) {
                    let already = sigs[&ent.name]
                        .params
                        .iter()
                        .any(|p| p.name == v && p.is_layer);
                    if !already {
                        updates.push((ent.name.clone(), v));
                    }
                }
            }
        }
        if updates.is_empty() {
            return;
        }
        for (ent, param) in updates {
            if let Some(sig) = sigs.get_mut(&ent) {
                for p in &mut sig.params {
                    if p.name == param {
                        p.is_layer = true;
                    }
                }
            }
        }
    }
}

// ----- walkers ----------------------------------------------------------

/// One lexical scope: the top level or an entity body.
pub(crate) struct Scope<'p> {
    pub entity: Option<&'p Entity>,
    pub body: &'p [Stmt],
}

/// The scopes of a program, top level first.
pub(crate) fn scopes(p: &Program) -> Vec<Scope<'_>> {
    let mut out = vec![Scope {
        entity: None,
        body: &p.top,
    }];
    for e in &p.entities {
        out.push(Scope {
            entity: Some(e),
            body: &e.body,
        });
    }
    out
}

/// Pre-order walk over statements, recursing into nested bodies.
pub(crate) fn walk_stmts<'p>(stmts: &'p [Stmt], f: &mut impl FnMut(&'p Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::For { body, .. } => walk_stmts(body, f),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                walk_stmts(then_body, f);
                walk_stmts(else_body, f);
            }
            Stmt::Variant { arms, .. } => {
                for arm in arms {
                    walk_stmts(arm, f);
                }
            }
            Stmt::Assign { .. } | Stmt::Call(_) | Stmt::Compact { .. } => {}
        }
    }
}

/// Pre-order walk over an expression tree, including call arguments.
pub(crate) fn walk_expr<'p>(e: &'p Expr, f: &mut impl FnMut(&'p Expr)) {
    f(e);
    match e {
        Expr::Call(c) => {
            for a in &c.positional {
                walk_expr(a, f);
            }
            for (_, _, a) in &c.keyword {
                walk_expr(a, f);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Neg(inner, _) => walk_expr(inner, f),
        Expr::Number(..) | Expr::Str(..) | Expr::Layer(..) | Expr::Var(..) => {}
    }
}

/// Walks the expressions directly attached to one statement (conditions,
/// bounds, values, arguments) — not the statements nested inside it.
pub(crate) fn walk_exprs_in_stmt<'p>(s: &'p Stmt, f: &mut impl FnMut(&'p Expr)) {
    match s {
        Stmt::Assign { value, .. } => walk_expr(value, f),
        Stmt::Call(c) => {
            for a in &c.positional {
                walk_expr(a, f);
            }
            for (_, _, a) in &c.keyword {
                walk_expr(a, f);
            }
        }
        Stmt::Compact { ignore, .. } => {
            for e in ignore {
                walk_expr(e, f);
            }
        }
        Stmt::For { from, to, .. } => {
            walk_expr(from, f);
            walk_expr(to, f);
        }
        Stmt::If { cond, .. } => walk_expr(cond, f),
        Stmt::Variant { .. } => {}
    }
}

/// Visits every [`Call`] in a statement list: statement-position calls
/// and calls nested anywhere in expressions.
pub(crate) fn walk_calls<'p>(stmts: &'p [Stmt], f: &mut impl FnMut(&'p Call)) {
    walk_stmts(stmts, &mut |s| {
        if let Stmt::Call(c) = s {
            f(c);
        }
        walk_exprs_in_stmt(s, &mut |e| {
            if let Expr::Call(c) = e {
                f(c);
            }
        });
    });
}

// ----- constant folding -------------------------------------------------

/// Folds a constant expression to its numeric value. Division by a
/// constant zero folds to `None` (pass 5 reports it explicitly);
/// anything referencing variables or calls is not constant.
pub(crate) fn fold(e: &Expr) -> Option<f64> {
    match e {
        Expr::Number(n, _) => Some(*n),
        Expr::Neg(inner, _) => fold(inner).map(|v| -v),
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = fold(lhs)?;
            let b = fold(rhs)?;
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return None;
                    }
                    a / b
                }
                BinOp::Eq => f64::from(a == b),
                BinOp::Ne => f64::from(a != b),
                BinOp::Lt => f64::from(a < b),
                BinOp::Le => f64::from(a <= b),
                BinOp::Gt => f64::from(a > b),
                BinOp::Ge => f64::from(a >= b),
            })
        }
        Expr::Str(..) | Expr::Layer(..) | Expr::Var(..) | Expr::Call(_) => None,
    }
}

// ----- name suggestions -------------------------------------------------

/// Classic Levenshtein distance (names are short; quadratic is fine).
pub(crate) fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for i in 1..=a.len() {
        cur[0] = i;
        for j in 1..=b.len() {
            let sub = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + sub);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest candidate within an edit distance of 2 — the classic
/// "did you mean" hint.
pub(crate) fn suggest<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> Option<String> {
    candidates
        .map(|c| (edit_distance(name, c), c))
        .filter(|(d, _)| *d <= 2)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("poly", "poly"), 0);
        assert_eq!(edit_distance("polyy", "poly"), 1);
        assert_eq!(edit_distance("metal", "metal1"), 1);
        assert_eq!(edit_distance("abc", "xyz"), 3);
    }

    #[test]
    fn suggest_picks_the_nearest_within_two() {
        let cands = ["poly", "metal1", "contact"];
        assert_eq!(
            suggest("polyy", cands.iter().copied()),
            Some("poly".to_string())
        );
        assert_eq!(suggest("zzzzzz", cands.iter().copied()), None);
    }

    #[test]
    fn fold_handles_arithmetic_and_rejects_vars() {
        use amgen_dsl::parser::parse;
        let p = parse("x = (1 + 2) * 3\ny = w + 1\n").unwrap();
        let amgen_dsl::ast::Stmt::Assign { value, .. } = &p.top[0] else {
            panic!()
        };
        assert_eq!(fold(value), Some(9.0));
        let amgen_dsl::ast::Stmt::Assign { value, .. } = &p.top[1] else {
            panic!()
        };
        assert_eq!(fold(value), None);
    }
}

//! The reproduction harness: regenerates every figure/measurement of the
//! paper and prints paper-reported vs. measured values — the data behind
//! EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release --bin experiments
//! ```

use amgen::amp::build_amplifier;
use amgen::drc::latchup;
use amgen::dsl::{stdlib, Interpreter};
use amgen::modgen::baseline::BASELINE_SOURCE;
use amgen::modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen::modgen::diffpair::{diff_pair, DiffPairParams};
use amgen::modgen::{contact_row, ContactRowParams, MosType};
use amgen::opt::{Optimizer, RatingWeights, SearchOptions, Step};
use amgen::prelude::*;
use std::time::Instant;

fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

fn main() {
    let tech = Tech::bicmos_1u();
    std::fs::create_dir_all("out").expect("create out/");
    // `--trace out.json` (or AMGEN_TRACE=out.json) records every figure
    // into one Chrome-trace file; stages sharing `ctx` contribute spans.
    let trace_path = amgen::trace::trace_path_from_args();
    let ctx = GenCtx::from_tech(&tech).with_tracing_at(if trace_path.is_some() {
        Detail::Fine
    } else {
        Detail::Off
    });

    let figure = |name: &'static str, f: &dyn Fn()| {
        let _span = ctx.trace.span("experiments", || name);
        f();
    };
    figure("fig1", &|| fig1(&tech));
    figure("fig3", &|| fig3(&tech));
    figure("fig4", &|| fig4(&tech));
    figure("fig5", &|| fig5(&tech, &ctx));
    figure("fig6", &|| fig6(&tech, &ctx));
    figure("fig9", &|| fig9(&tech));
    figure("fig10", &|| fig10(&tech, &ctx));
    figure("code_length", &code_length);
    figure("opt_order", &|| opt_order(&tech, &ctx));
    figure("catalog", &|| catalog(&tech, &ctx));
    println!();
    println!("done — SVG/GDS/CIF artifacts in out/");
    if let Some(path) = trace_path {
        println!("{}", ctx.run_report());
        ctx.trace
            .drain()
            .write_chrome_file(&path)
            .expect("write trace");
        println!("chrome trace written to {}", path.display());
    }
}

/// Fig. 1: the 16 overlap cases of the latch-up subtraction.
fn fig1(tech: &Tech) {
    header("Fig. 1 — latch-up rule check (16 overlap cases)");
    let d = tech.latchup_distance();
    let solid = Rect::new(0, 0, 8 * d, 8 * d);
    let cases = [
        ("full", (-d, 9 * d)),
        ("low", (-2 * d, 0)),
        ("high", (8 * d, 10 * d)),
        ("middle", (4 * d - 100, 4 * d + 100)),
    ];
    let mut ok = 0;
    for &(hn, (x0, x1)) in &cases {
        for &(vn, (y0, y1)) in &cases {
            let pdiff = tech.layer("pdiff").unwrap();
            let mut obj = LayoutObject::new("case");
            obj.push(Shape::new(pdiff, solid).with_role(ShapeRole::DeviceActive));
            obj.push(
                Shape::new(pdiff, Rect::new(x0, y0, x1, y1)).with_role(ShapeRole::SubstrateContact),
            );
            let rem = latchup::latchup_remainder(tech, &obj);
            let cover = Rect::new(x0, y0, x1, y1).inflated(d);
            let cut = solid.intersection(&cover).map_or(0, |o| o.area());
            let exact = rem.area() == solid.area() - cut;
            if exact {
                ok += 1;
            }
            println!(
                "  {hn:>6} x {vn:<6} remainders = {:2}  exact-area = {exact}",
                rem.len()
            );
        }
    }
    println!("  paper: systematic check of all 16 overlap cases | measured: {ok}/16 exact");
}

/// Fig. 3: the three contact-row variants.
fn fig3(tech: &Tech) {
    header("Fig. 3 — contact row variants");
    let poly = tech.layer("poly").unwrap();
    let ct = tech.layer("contact").unwrap();
    let variants: [(&str, ContactRowParams); 3] = [
        ("W,L omitted", ContactRowParams::new()),
        ("W = 10 um ", ContactRowParams::new().with_w(um(10))),
        (
            "W = 8, L = 6",
            ContactRowParams::new().with_w(um(8)).with_l(um(6)),
        ),
    ];
    println!("  paper: single contact | one row | 2-D array (shapes of Fig. 3)");
    for (name, p) in variants {
        let row = contact_row(tech, poly, &p).unwrap();
        let xs: std::collections::HashSet<i64> = row.shapes_on(ct).map(|s| s.rect.x0).collect();
        let ys: std::collections::HashSet<i64> = row.shapes_on(ct).map(|s| s.rect.y0).collect();
        let clean = Drc::new(tech).check(&row).is_empty();
        println!(
            "  {name:14} -> {:5.1} x {:4.1} um, {:2} contacts ({}x{}), DRC clean = {clean}",
            row.bbox().width() as f64 / 1e3,
            row.bbox().height() as f64 / 1e3,
            row.shapes_on(ct).count(),
            xs.len(),
            ys.len(),
        );
    }
}

/// Fig. 4: the fill-pattern legend for the layers.
fn fig4(tech: &Tech) {
    header("Fig. 4 — layer legend");
    let legend = amgen::export::render_legend(tech);
    std::fs::write("out/fig4_legend.svg", &legend).unwrap();
    println!(
        "  {} layers rendered (paper: fill patterns; here: colour swatches) -> out/fig4_legend.svg",
        tech.layer_count()
    );
}

/// The whole module library: one line per generator (sizes, check).
fn catalog(tech: &Tech, ctx: &GenCtx) {
    use amgen::modgen::capacitor::{mos_capacitor, MosCapParams};
    use amgen::modgen::cascode::{cascode_pair, CascodeParams};
    use amgen::modgen::diode::{diode_transistor, DiodeParams};
    use amgen::modgen::interdigit::{interdigitated, InterdigitParams};
    use amgen::modgen::mirror::{current_mirror, MirrorParams};
    use amgen::modgen::quad::{common_centroid_quad, QuadParams};
    use amgen::modgen::resistor::{poly_resistor, ResistorParams};
    use amgen::modgen::stacked::{stacked_transistor, StackedParams};
    use amgen::modgen::{contact_row, mos_transistor, ContactRowParams, MosParams, MosType};

    header("Module library catalogue");
    let drc = Drc::new(ctx);
    let print_row = |name: &str, m: &LayoutObject, extra: String| {
        let bb = m.bbox();
        let shorts = drc
            .check_spacing(m)
            .iter()
            .filter(|v| v.kind == amgen::drc::ViolationKind::Short)
            .count();
        println!(
            "  {name:22} {:6.1} x {:5.1} um  {:4} shapes  shorts={shorts}  {extra}",
            bb.width() as f64 / 1e3,
            bb.height() as f64 / 1e3,
            m.len(),
        );
        // Every catalogue module also exports to CIF.
        let cif = amgen::export::write_cif(tech, m);
        assert!(amgen::export::parse_cif_summary(&cif).is_ok());
    };
    let poly = tech.layer("poly").unwrap();
    let row = contact_row(ctx, poly, &ContactRowParams::new().with_w(um(10))).unwrap();
    print_row("contact_row", &row, String::new());
    let m = mos_transistor(ctx, &MosParams::new(MosType::N).with_w(um(10))).unwrap();
    print_row("mos_transistor", &m, String::new());
    let m = interdigitated(ctx, &InterdigitParams::new(MosType::N, 4).with_w(um(8))).unwrap();
    print_row("interdigitated x4", &m, String::new());
    let m = stacked_transistor(ctx, &StackedParams::new(MosType::N, 4).with_w(um(6))).unwrap();
    print_row("stacked x4", &m, String::new());
    let m = diode_transistor(ctx, &DiodeParams::new(MosType::N).with_w(um(8))).unwrap();
    print_row("diode_connected", &m, String::new());
    let m = current_mirror(ctx, &MirrorParams::new(MosType::N).with_w(um(6))).unwrap();
    print_row("current_mirror", &m, String::new());
    let m = cascode_pair(ctx, &CascodeParams::new(MosType::N).with_w(um(6))).unwrap();
    print_row("cascode_pair", &m, String::new());
    let m = common_centroid_quad(ctx, &QuadParams::new(MosType::N).with_w(um(6))).unwrap();
    print_row("centroid_quad (2-D)", &m, String::new());
    let (m, ohms) = poly_resistor(ctx, &ResistorParams::new(6).with_leg_l(um(15))).unwrap();
    print_row("poly_resistor", &m, format!("≈ {ohms:.0} Ω"));
    let (m, ff) = mos_capacitor(ctx, &MosCapParams::new(MosType::N).with_side(um(12))).unwrap();
    print_row("mos_capacitor", &m, format!("≈ {ff:.2} fF"));
}

/// Fig. 5: auto-connect and the variable-edge ablation.
fn fig5(tech: &Tech, ctx: &GenCtx) {
    header("Fig. 5 — variable edges (fixed vs variable ablation)");
    let poly = tech.layer("poly").unwrap();
    let m1 = tech.layer("metal1").unwrap();
    let comp = Compactor::new(ctx);
    let run = |variable: bool| -> (i64, usize, usize) {
        let mut p = ContactRowParams::new().with_w(um(4)).with_l(um(12));
        if variable {
            p = p.with_variable_edges();
        }
        let row = contact_row(ctx, poly, &p).unwrap();
        let mut probe = LayoutObject::new("probe");
        let sig = probe.net("sig");
        probe.push(Shape::new(m1, Rect::new(0, 0, um(2), um(12))).with_net(sig));
        let mut main = LayoutObject::new("main");
        comp.compact(&mut main, &row, Dir::West, &CompactOptions::new())
            .unwrap();
        let r = comp
            .compact(&mut main, &probe, Dir::East, &CompactOptions::new())
            .unwrap();
        (main.bbox().width(), r.shrunk_edges, r.rebuilt_groups)
    };
    let (w_fixed, _, _) = run(false);
    let (w_var, shrunk, rebuilt) = run(true);
    println!("  fixed edges:    width {:5.1} um", w_fixed as f64 / 1e3);
    println!(
        "  variable edges: width {:5.1} um  ({} edge(s) moved, {} group(s) rebuilt)",
        w_var as f64 / 1e3,
        shrunk,
        rebuilt
    );
    println!(
        "  paper: 'a substantial reduction of the layout area' | measured: -{:.0}%",
        100.0 * (w_fixed - w_var) as f64 / w_fixed as f64
    );
}

/// Figs. 6/7: the differential pair, native and through the DSL.
fn fig6(tech: &Tech, ctx: &GenCtx) {
    header("Figs. 6/7 — MOS differential pair");
    let t0 = Instant::now();
    let native = diff_pair(
        ctx,
        &DiffPairParams::new(MosType::P).with_w(um(10)).with_l(um(2)),
    )
    .unwrap();
    let native_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut interp = Interpreter::new(ctx);
    interp.load(stdlib::FIG2_CONTACT_ROW).unwrap();
    interp.load(stdlib::FIG7_DIFF_PAIR).unwrap();
    let t0 = Instant::now();
    let out = interp.run("diff = DiffPair(W = 10, L = 2)\n").unwrap();
    let dsl_ms = t0.elapsed().as_secs_f64() * 1e3;
    let dsl_pair = &out["diff"];
    let poly = tech.layer("poly").unwrap();
    let gates = |o: &LayoutObject| {
        o.shapes_on(poly)
            .filter(|s| s.rect.height() > 3 * s.rect.width())
            .count()
    };
    println!(
        "  native: {} shapes, {} gates, {:.1} x {:.1} um, {:.2} ms",
        native.len(),
        gates(&native),
        native.bbox().width() as f64 / 1e3,
        native.bbox().height() as f64 / 1e3,
        native_ms
    );
    println!(
        "  DSL:    {} shapes, {} gates, {:.1} x {:.1} um, {:.2} ms (interpreted)",
        dsl_pair.len(),
        gates(dsl_pair),
        dsl_pair.bbox().width() as f64 / 1e3,
        dsl_pair.bbox().height() as f64 / 1e3,
        dsl_ms
    );
    println!(
        "  paper: 2 transistors, 3 diffusion rows, 2 poly contacts | measured gates: {}",
        gates(dsl_pair)
    );
    std::fs::write("out/fig6_diffpair.svg", render_svg(tech, dsl_pair)).unwrap();
    std::fs::write(
        "out/fig6_diffpair.cif",
        amgen::export::write_cif(tech, dsl_pair),
    )
    .unwrap();
}

/// Figs. 8/9: the amplifier.
fn fig9(tech: &Tech) {
    header("Figs. 8/9 — BiCMOS amplifier");
    let t0 = Instant::now();
    let (amp, report) = build_amplifier(tech).unwrap();
    let secs = t0.elapsed().as_secs_f64();
    for (name, w, h) in &report.blocks {
        println!("  block {name:18} {w:7.1} x {h:6.1} um");
    }
    println!(
        "  total {:.1} x {:.1} um = {:.0} um^2   (paper: 592 x 481 = 284,752 um^2, other device sizes)",
        report.width_um,
        report.height_um,
        report.width_um * report.height_um
    );
    println!(
        "  shorts = {}  spacing = {}  latch-up clean = {}  C(out) = {:.1} fF  [{secs:.2} s]",
        report.shorts, report.spacing, report.latchup_clean, report.output_cap_ff
    );
    std::fs::write("out/fig9_amplifier.svg", render_svg(tech, &amp)).unwrap();
    std::fs::write("out/fig9_amplifier.gds", write_gds(tech, &amp)).unwrap();
    // System-level technology independence: the CMOS variant of the same
    // amplifier, generated in the 0.8 µm deck.
    let cmos = Tech::cmos_08();
    let (_, rc) = amgen::amp::build_amplifier_cmos(&cmos).unwrap();
    println!(
        "  CMOS variant in {}: {:.1} x {:.1} um, shorts = {}, latch-up clean = {}",
        cmos.name(),
        rc.width_um,
        rc.height_um,
        rc.shorts,
        rc.latchup_clean
    );
}

/// Fig. 10: the centroid pair.
fn fig10(tech: &Tech, ctx: &GenCtx) {
    header("Fig. 10 — centroidal cross-coupled pair (block E)");
    let t0 = Instant::now();
    let m = centroid_diff_pair(
        ctx,
        &CentroidParams::paper(MosType::N)
            .with_w(um(6))
            .with_l(um(1)),
    )
    .unwrap();
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let counts = Router::new(ctx).crossing_counts(&m);
    let get = |n: &str| {
        counts
            .iter()
            .find(|(x, _)| x == n)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    let poly = tech.layer("poly").unwrap();
    let stripes = m
        .shapes_on(poly)
        .filter(|s| s.rect.height() > 3 * s.rect.width())
        .count();
    println!(
        "  {} shapes, {} gate fingers (8 active + 16 dummies)",
        m.len(),
        stripes
    );
    println!(
        "  crossings d1 = {}, d2 = {} (paper: 'every net has identical crossings')",
        get("d1"),
        get("d2")
    );
    println!(
        "  latch-up clean = {} (substrate contacts included in the module)",
        latchup::check_latchup(ctx, &m).is_empty()
    );
    println!("  build time {ms:.1} ms (paper: 5 s on 1996 hardware)");
    std::fs::write("out/fig10_centroid.svg", render_svg(tech, &m)).unwrap();
    // The same placement written in the language itself (the paper's
    // module E source was ~180 lines).
    let dsl_lines = stdlib::CENTROID_PLACEMENT
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count();
    let mut i = Interpreter::new(ctx);
    i.load(stdlib::FIG2_CONTACT_ROW).unwrap();
    i.load(stdlib::CENTROID_PLACEMENT).unwrap();
    let out = i
        .run("e = CentroidE(side = 4, center = 8, W = 6, L = 1)\n")
        .unwrap();
    println!(
        "  same placement in the DSL: {dsl_lines} lines (paper: ~180), {} shapes",
        out["e"].len()
    );
}

fn significant_lines(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty() && !l.starts_with("//") && !l.starts_with("#[") && !l.starts_with("#!")
        })
        .count()
}

/// T-code: DSL source length vs the coordinate-level baseline.
fn code_length() {
    header("T-code — module source length, DSL vs coordinate level");
    let dsl_row = significant_lines(stdlib::FIG2_CONTACT_ROW);
    let dsl_pair = significant_lines(stdlib::FIG7_DIFF_PAIR);
    // The baseline file: count only the generator function body (strip
    // the test module).
    let baseline_body = BASELINE_SOURCE
        .split("#[cfg(test)]")
        .next()
        .unwrap_or(BASELINE_SOURCE);
    let baseline = significant_lines(baseline_body);
    println!("  ContactRow in the DSL:          {dsl_row:4} lines");
    println!("  DiffPair + Trans in the DSL:    {dsl_pair:4} lines");
    println!("  coordinate-level contact row:   {baseline:4} lines (Rust, rules by hand)");
    println!(
        "  paper: coordinate methods 'needed a multiple of this source code' | measured ratio: {:.1}x",
        baseline as f64 / dsl_row as f64
    );
}

/// §2.4: the optimization mode.
fn opt_order(tech: &Tech, ctx: &GenCtx) {
    header("T-opt — compaction-order optimization (section 2.4)");
    let poly = tech.layer("poly").unwrap();
    let mut seed = LayoutObject::new("L");
    seed.push(Shape::new(poly, Rect::new(0, 0, um(1), um(8))));
    seed.push(Shape::new(poly, Rect::new(0, 0, um(8), um(1))));
    let mut steps = vec![Step::new(seed, Dir::East, CompactOptions::new())];
    for i in 0..4 {
        let y0 = (i as i64 % 3) * um(3);
        let mut sq = LayoutObject::new("sq");
        sq.push(Shape::new(poly, Rect::new(0, y0, um(2), y0 + um(2))));
        steps.push(Step::new(sq, Dir::East, CompactOptions::new()));
    }
    let opt = Optimizer::new(ctx, RatingWeights::default());
    let (_, written) = opt.build(&steps).unwrap();
    let best = opt
        .optimize_order(&steps, SearchOptions::default())
        .unwrap();
    println!(
        "  written order: area {:7.1} um^2 | optimized: {:7.1} um^2 ({:.0}% better)",
        written.area_um2,
        best.rating.area_um2,
        100.0 * (written.area_um2 - best.rating.area_um2) / written.area_um2
    );
    println!(
        "  search: {} explored, {} pruned, {} dominated, best order {:?}, {:.1} ms",
        best.explored,
        best.pruned,
        best.dominated,
        best.order,
        best.wall.as_secs_f64() * 1e3
    );
    let par = opt
        .optimize_order(&steps, SearchOptions::parallel())
        .unwrap();
    assert_eq!(
        par.order, best.order,
        "parallel search must agree with sequential"
    );
    println!(
        "  parallel ({} workers): {} explored, {:.1} ms",
        par.workers,
        par.explored,
        par.wall.as_secs_f64() * 1e3
    );
}

//! `amgen-lint`: command-line front end of the static analyzer.
//!
//! Lints generator programs (`.amg` sources) without running them. All
//! files of one invocation are linted as a single set — entities defined
//! in any file are callable from every other, so split libraries like
//! `contact_row.amg` + `diffpair.amg` resolve.
//!
//! ```text
//! amgen-lint examples/*.amg            lint a file set
//! amgen-lint --examples                lint the embedded paper programs
//! amgen-lint --stdlib main.amg         preload the embedded library first
//! amgen-lint --deny-warnings ...       CI gate: warnings fail too
//! amgen-lint --certify ...             print static cost certificates
//! amgen-lint --certify --json ...      same, as one JSON document
//! amgen-lint --certify-fuel 5000 ...   certify against a fuel limit
//! amgen-lint --time ...                report lint wall time
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use std::process::ExitCode;
use std::time::Instant;

use amgen::lint::{
    certificates_json, render_all, render_certificates, CertifyOptions, CostReport, Diagnostic,
    Linter,
};
use amgen::tech::Tech;

struct Opts {
    deny_warnings: bool,
    examples: bool,
    stdlib: bool,
    time: bool,
    certify: bool,
    json: bool,
    certify_fuel: Option<u64>,
    trace: Option<std::path::PathBuf>,
    files: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: amgen-lint [--deny-warnings] [--examples] [--stdlib] [--certify] [--json]\n\
         \x20                 [--certify-fuel N] [--time] [file.amg ...]\n\
         \n\
         Lints generator programs against the built-in technology.\n\
         All files given in one invocation are linted as one set.\n\
         --examples adds the embedded paper programs (Figs. 2, 7, ...).\n\
         --stdlib preloads the embedded module library for the file set.\n\
         --deny-warnings exits non-zero on warnings as well as errors.\n\
         --certify prints per-entity static cost certificates (fuel,\n\
         \x20 shapes, compaction steps, recursion depth, variant runs).\n\
         --json emits the certificates as one JSON document instead.\n\
         --certify-fuel N certifies against a fuel limit: loops certain\n\
         \x20 to exhaust it are errors (E502), loops that may are warnings\n\
         \x20 (W504).\n\
         --trace out.json writes a Chrome-trace of the run (per-source spans)."
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Opts, ExitCode> {
    let mut opts = Opts {
        deny_warnings: false,
        examples: false,
        stdlib: false,
        time: false,
        certify: false,
        json: false,
        certify_fuel: None,
        trace: amgen::trace::trace_path_from_args(),
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--examples" => opts.examples = true,
            "--stdlib" => opts.stdlib = true,
            "--time" => opts.time = true,
            "--certify" => opts.certify = true,
            "--json" => opts.json = true,
            "--certify-fuel" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => opts.certify_fuel = Some(n),
                _ => {
                    eprintln!("amgen-lint: --certify-fuel needs a number");
                    return Err(usage());
                }
            },
            a if a.starts_with("--certify-fuel=") => {
                match a["--certify-fuel=".len()..].parse::<u64>() {
                    Ok(n) => opts.certify_fuel = Some(n),
                    Err(_) => {
                        eprintln!("amgen-lint: --certify-fuel needs a number");
                        return Err(usage());
                    }
                }
            }
            // Value already picked up by `trace_path_from_args`.
            "--trace" => {
                args.next();
            }
            a if a.starts_with("--trace=") => {}
            "-h" | "--help" => return Err(usage()),
            f if !f.starts_with('-') => opts.files.push(f.to_string()),
            other => {
                eprintln!("amgen-lint: unknown flag `{other}`");
                return Err(usage());
            }
        }
    }
    if opts.json && !opts.certify {
        eprintln!("amgen-lint: --json only applies with --certify");
        return Err(usage());
    }
    if opts.files.is_empty() && !opts.examples {
        return Err(usage());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let rules = Tech::bicmos_1u().compile_arc();
    let sink = amgen::trace::TraceSink::new();
    sink.set_enabled(opts.trace.is_some());
    let mut sources: Vec<(String, String)> = Vec::new();
    for f in &opts.files {
        match std::fs::read_to_string(f) {
            Ok(src) => sources.push((f.clone(), src)),
            Err(e) => {
                eprintln!("amgen-lint: cannot read `{f}`: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let certify_opts = CertifyOptions {
        fuel: opts.certify_fuel,
        ..CertifyOptions::default()
    };
    let max_variants = amgen::dsl::costmodel::DEFAULT_MAX_VARIANTS;

    let t0 = Instant::now();
    let mut findings: Vec<(String, String, Vec<Diagnostic>)> = Vec::new();
    let mut cert_names: Vec<String> = Vec::new();
    let mut cert_report = CostReport::default();

    // The files of one invocation form one set.
    if !sources.is_empty() {
        let mut linter = Linter::with_rules(rules.clone()).with_certify(certify_opts.clone());
        if opts.stdlib {
            use amgen::dsl::stdlib;
            for lib in [
                stdlib::FIG2_CONTACT_ROW,
                stdlib::FIG7_DIFF_PAIR,
                stdlib::INTERDIGIT,
                stdlib::STACKED,
                stdlib::CENTROID_PLACEMENT,
                stdlib::VARIANT_ROW,
            ] {
                if let Err(e) = linter.load(lib) {
                    eprintln!("amgen-lint: embedded library failed to load: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        let set: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, s)| (n.as_str(), s.as_str()))
            .collect();
        let (diags_per_source, report) = {
            let _span = sink.span("lint", || format!("lint_set:{} file(s)", set.len()));
            linter.certify_set(&set)
        };
        for ((name, src), diags) in sources.iter().zip(diags_per_source) {
            findings.push((name.clone(), src.clone(), diags));
        }
        cert_names.extend(sources.iter().map(|(n, _)| n.clone()));
        cert_report.entities.extend(report.entities);
        cert_report.tops.extend(report.tops);
    }

    // The embedded paper programs are libraries over the Fig. 2 contact
    // row; each is linted on its own with that library preloaded.
    if opts.examples {
        use amgen::dsl::stdlib;
        let mut linter = Linter::with_rules(rules).with_certify(certify_opts);
        if let Err(e) = linter.load(stdlib::FIG2_CONTACT_ROW) {
            eprintln!("amgen-lint: embedded library failed to load: {e}");
            return ExitCode::from(2);
        }
        for (name, src) in [
            ("<stdlib:FIG2_CONTACT_ROW>", stdlib::FIG2_CONTACT_ROW),
            ("<stdlib:FIG7_DIFF_PAIR>", stdlib::FIG7_DIFF_PAIR),
            ("<stdlib:INTERDIGIT>", stdlib::INTERDIGIT),
            ("<stdlib:STACKED>", stdlib::STACKED),
            ("<stdlib:CENTROID_PLACEMENT>", stdlib::CENTROID_PLACEMENT),
            ("<stdlib:VARIANT_ROW>", stdlib::VARIANT_ROW),
        ] {
            let (diags, report) = {
                let mut span = sink.span("lint", || format!("lint:{name}"));
                let (diags, report) = linter.certify_source(src);
                span.arg("diagnostics", diags.len());
                (diags, report)
            };
            findings.push((name.to_string(), src.to_string(), diags));
            cert_names.push(name.to_string());
            // Repeated library entities certify identically every time,
            // so last-wins merging is lossless.
            cert_report.entities.extend(report.entities);
            cert_report.tops.extend(report.tops);
        }
    }

    let elapsed = t0.elapsed();
    if let Some(path) = &opts.trace {
        if let Err(e) = sink.drain().write_chrome_file(path) {
            eprintln!("amgen-lint: cannot write trace `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for (name, src, diags) in &findings {
        errors += diags.iter().filter(|d| d.is_error()).count();
        warnings += diags.iter().filter(|d| !d.is_error()).count();
        if !diags.is_empty() {
            print!("{}", render_all(name, src, diags));
        }
    }

    if opts.certify {
        let names: Vec<&str> = cert_names.iter().map(String::as_str).collect();
        if opts.json {
            println!("{}", certificates_json(&names, &cert_report, max_variants));
        } else {
            print!(
                "{}",
                render_certificates(&names, &cert_report, max_variants)
            );
        }
    }

    let checked = findings.len();
    if opts.time {
        eprintln!("amgen-lint: {checked} source(s) in {elapsed:.2?}");
    }
    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        eprintln!("amgen-lint: {errors} error(s), {warnings} warning(s)");
        ExitCode::from(1)
    } else {
        if warnings > 0 {
            eprintln!("amgen-lint: {warnings} warning(s)");
        }
        ExitCode::SUCCESS
    }
}

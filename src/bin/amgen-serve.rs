//! `amgen-serve`: the generation daemon.
//!
//! Serves the length-prefixed JSON wire protocol documented in
//! docs/SERVING.md: DSL sources + parameters in, layout JSON +
//! diagnostics out, every request admission-checked against a
//! per-tenant budget before a single statement executes.
//!
//! ```text
//! amgen-serve                          listen on 127.0.0.1:7077
//! amgen-serve --addr 0.0.0.0:9000      listen elsewhere
//! amgen-serve --workers 4              worker shards (default 2)
//! amgen-serve --fuel 50000             tenant fuel cap per request
//! amgen-serve --wall-ms 5000           per-request wall deadline cap
//! amgen-serve --queue 64               per-shard queue depth
//! amgen-serve --max-frame 1048576      largest accepted frame, bytes
//! amgen-serve --max-tenants 64         tenants tracked individually
//! amgen-serve --stats-every 30         periodic stats block, seconds
//! amgen-serve --drain-ms 2000          shutdown drain deadline
//! amgen-serve --watchdog-ms 10000      wedged-worker watchdog
//! amgen-serve --breaker-window 16      circuit-breaker sample window
//! amgen-serve --breaker-cooldown-ms 1000   breaker open duration
//! amgen-serve --cache-snapshot PATH    warm-restart cache snapshot file
//! amgen-serve --once                   one stdin/stdout session, no TCP
//! ```
//!
//! SIGTERM or SIGINT triggers a graceful shutdown: the listener stops
//! accepting, queued requests drain under `--drain-ms`, in-flight work
//! finishes, and (with `--cache-snapshot`) the generation cache is
//! written for the next start.
//!
//! Exit status: 0 clean. In `--once` mode, 1 when any response carried
//! a typed error code and 2 on a transport (I/O) failure; daemon mode
//! exits 2 on usage or bind errors.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use amgen::serve::{run_once, ServeConfig, Server};

struct Opts {
    addr: String,
    once: bool,
    stats_every: Option<u64>,
    config: ServeConfig,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: amgen-serve [--addr HOST:PORT] [--workers N] [--queue N] [--max-frame BYTES]\n\
         \x20                  [--fuel N] [--wall-ms MS] [--max-tenants N] [--stats-every SECS]\n\
         \x20                  [--drain-ms MS] [--watchdog-ms MS] [--breaker-window N]\n\
         \x20                  [--breaker-cooldown-ms MS] [--cache-snapshot PATH] [--once]\n\
         \n\
         Serves generator programs over the wire protocol in docs/SERVING.md.\n\
         --once reads frames from stdin and answers on stdout, then exits at\n\
         end of stream — the mode tests and shell pipelines use. Exit status\n\
         there is 0 when every response was ok, 1 when any carried a typed\n\
         error code, 2 on transport failure.\n\
         --stats-every prints a per-tenant metrics block to stderr periodically.\n\
         --cache-snapshot loads the generation cache from PATH at start (best\n\
         effort; corrupt or stale images fall back to a cold cache) and saves\n\
         it on graceful shutdown (SIGTERM/SIGINT)."
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Opts, ExitCode> {
    let mut opts = Opts {
        addr: "127.0.0.1:7077".to_string(),
        once: false,
        stats_every: None,
        config: ServeConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    fn num(value: Option<String>, flag: &str) -> Result<u64, ExitCode> {
        match value.map(|v| v.parse::<u64>()) {
            Some(Ok(n)) => Ok(n),
            _ => {
                eprintln!("amgen-serve: {flag} needs a number");
                Err(usage())
            }
        }
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => match args.next() {
                Some(v) => opts.addr = v,
                None => return Err(usage()),
            },
            "--once" => opts.once = true,
            "--workers" => opts.config.workers = num(args.next(), "--workers")?.max(1) as usize,
            "--queue" => opts.config.queue_depth = num(args.next(), "--queue")?.max(1) as usize,
            "--max-frame" => {
                opts.config.max_frame = num(args.next(), "--max-frame")? as usize;
            }
            "--max-tenants" => {
                opts.config.max_tenants = num(args.next(), "--max-tenants")?.max(1) as usize;
            }
            "--fuel" => {
                opts.config.tenant_budget = opts
                    .config
                    .tenant_budget
                    .with_dsl_fuel(num(args.next(), "--fuel")?);
            }
            "--wall-ms" => {
                opts.config.wall_cap = Duration::from_millis(num(args.next(), "--wall-ms")?);
            }
            "--drain-ms" => {
                opts.config.drain = Duration::from_millis(num(args.next(), "--drain-ms")?);
            }
            "--watchdog-ms" => {
                opts.config.watchdog =
                    Duration::from_millis(num(args.next(), "--watchdog-ms")?.max(1));
            }
            "--breaker-window" => {
                opts.config.breaker_window = num(args.next(), "--breaker-window")?.max(1) as usize;
            }
            "--breaker-cooldown-ms" => {
                opts.config.breaker_cooldown =
                    Duration::from_millis(num(args.next(), "--breaker-cooldown-ms")?);
            }
            "--cache-snapshot" => match args.next() {
                Some(v) => opts.config.cache_snapshot = Some(v.into()),
                None => return Err(usage()),
            },
            "--stats-every" => opts.stats_every = Some(num(args.next(), "--stats-every")?.max(1)),
            "-h" | "--help" => return Err(usage()),
            other => {
                eprintln!("amgen-serve: unknown flag `{other}`");
                return Err(usage());
            }
        }
    }
    Ok(opts)
}

/// Set by the raw signal handler; the daemon loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Install SIGTERM/SIGINT handlers without pulling in a signal crate:
/// `signal(2)` is in every libc we link anyway, and an atomic store is
/// async-signal-safe.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    if opts.once {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        return match run_once(opts.config, &mut stdin.lock(), &mut stdout.lock()) {
            Ok(summary) if summary.errors == 0 => ExitCode::SUCCESS,
            Ok(_) => ExitCode::from(1),
            Err(e) => {
                eprintln!("amgen-serve: i/o error: {e}");
                ExitCode::from(2)
            }
        };
    }

    install_signal_handlers();

    let server = match Server::start(&opts.addr, opts.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("amgen-serve: cannot bind `{}`: {e}", opts.addr);
            return ExitCode::from(2);
        }
    };
    // The daemon's one line of ceremony; scripts parse the port off it.
    println!("amgen-serve listening on {}", server.addr());

    let every = opts.stats_every.map(Duration::from_secs);
    let mut last_stats = std::time::Instant::now();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
        if let Some(period) = every {
            if last_stats.elapsed() >= period {
                last_stats = std::time::Instant::now();
                for line in server.stats_lines() {
                    eprintln!("amgen-serve: {line}");
                }
            }
        }
    }

    eprintln!("amgen-serve: shutdown signal received; draining");
    server.shutdown();
    eprintln!("amgen-serve: shutdown complete");
    ExitCode::SUCCESS
}

//! `amgen-serve`: the generation daemon.
//!
//! Serves the length-prefixed JSON wire protocol documented in
//! docs/SERVING.md: DSL sources + parameters in, layout JSON +
//! diagnostics out, every request admission-checked against a
//! per-tenant budget before a single statement executes.
//!
//! ```text
//! amgen-serve                          listen on 127.0.0.1:7077
//! amgen-serve --addr 0.0.0.0:9000      listen elsewhere
//! amgen-serve --workers 4              worker shards (default 2)
//! amgen-serve --fuel 50000             tenant fuel cap per request
//! amgen-serve --wall-ms 5000           per-request wall deadline cap
//! amgen-serve --queue 64               per-shard queue depth
//! amgen-serve --max-frame 1048576      largest accepted frame, bytes
//! amgen-serve --max-tenants 64         tenants tracked individually
//! amgen-serve --stats-every 30         periodic stats block, seconds
//! amgen-serve --once                   one stdin/stdout session, no TCP
//! ```
//!
//! Exit status: 0 clean (`--once` end of stream), 2 usage or bind error.

use std::process::ExitCode;
use std::time::Duration;

use amgen::serve::{run_once, ServeConfig, Server};

struct Opts {
    addr: String,
    once: bool,
    stats_every: Option<u64>,
    config: ServeConfig,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: amgen-serve [--addr HOST:PORT] [--workers N] [--queue N] [--max-frame BYTES]\n\
         \x20                  [--fuel N] [--wall-ms MS] [--max-tenants N] [--stats-every SECS]\n\
         \x20                  [--once]\n\
         \n\
         Serves generator programs over the wire protocol in docs/SERVING.md.\n\
         --once reads frames from stdin and answers on stdout, then exits at\n\
         end of stream — the mode tests and shell pipelines use.\n\
         --stats-every prints a per-tenant metrics block to stderr periodically."
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Opts, ExitCode> {
    let mut opts = Opts {
        addr: "127.0.0.1:7077".to_string(),
        once: false,
        stats_every: None,
        config: ServeConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    fn num(value: Option<String>, flag: &str) -> Result<u64, ExitCode> {
        match value.map(|v| v.parse::<u64>()) {
            Some(Ok(n)) => Ok(n),
            _ => {
                eprintln!("amgen-serve: {flag} needs a number");
                Err(usage())
            }
        }
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => match args.next() {
                Some(v) => opts.addr = v,
                None => return Err(usage()),
            },
            "--once" => opts.once = true,
            "--workers" => opts.config.workers = num(args.next(), "--workers")?.max(1) as usize,
            "--queue" => opts.config.queue_depth = num(args.next(), "--queue")?.max(1) as usize,
            "--max-frame" => {
                opts.config.max_frame = num(args.next(), "--max-frame")? as usize;
            }
            "--max-tenants" => {
                opts.config.max_tenants = num(args.next(), "--max-tenants")?.max(1) as usize;
            }
            "--fuel" => {
                opts.config.tenant_budget = opts
                    .config
                    .tenant_budget
                    .with_dsl_fuel(num(args.next(), "--fuel")?);
            }
            "--wall-ms" => {
                opts.config.wall_cap = Duration::from_millis(num(args.next(), "--wall-ms")?);
            }
            "--stats-every" => opts.stats_every = Some(num(args.next(), "--stats-every")?.max(1)),
            "-h" | "--help" => return Err(usage()),
            other => {
                eprintln!("amgen-serve: unknown flag `{other}`");
                return Err(usage());
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    if opts.once {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        return match run_once(opts.config, &mut stdin.lock(), &mut stdout.lock()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("amgen-serve: i/o error: {e}");
                ExitCode::from(2)
            }
        };
    }

    let server = match Server::start(&opts.addr, opts.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("amgen-serve: cannot bind `{}`: {e}", opts.addr);
            return ExitCode::from(2);
        }
    };
    // The daemon's one line of ceremony; scripts parse the port off it.
    println!("amgen-serve listening on {}", server.addr());

    let every = opts.stats_every.map(Duration::from_secs);
    loop {
        std::thread::sleep(every.unwrap_or(Duration::from_secs(3600)));
        if every.is_some() {
            for line in server.stats_lines() {
                eprintln!("amgen-serve: {line}");
            }
        }
    }
}

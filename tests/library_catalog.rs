//! The whole module library, generated and verified in one sweep: every
//! generator must produce a short-free layout that survives GDSII and CIF
//! round trips; the pure-CMOS modules must do so in both decks.

use amgen::drc::ViolationKind;
use amgen::export::{parse_cif_summary, parse_gds_summary, write_cif, write_gds};
use amgen::modgen::capacitor::{mos_capacitor, MosCapParams};
use amgen::modgen::cascode::{cascode_pair, CascodeParams};
use amgen::modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen::modgen::diffpair::{diff_pair, DiffPairParams};
use amgen::modgen::diode::{diode_transistor, DiodeParams};
use amgen::modgen::interdigit::{interdigitated, InterdigitParams};
use amgen::modgen::mirror::{current_mirror, MirrorParams};
use amgen::modgen::quad::{common_centroid_quad, QuadParams};
use amgen::modgen::resistor::{poly_resistor, ResistorParams};
use amgen::modgen::stacked::{stacked_transistor, StackedParams};
use amgen::modgen::{contact_row, mos_transistor, ContactRowParams, MosParams, MosType};
use amgen::prelude::*;

/// Builds every MOS-only module of the library in the given deck.
fn mos_library(tech: &Tech) -> Vec<(&'static str, LayoutObject)> {
    vec![
        (
            "contact_row",
            contact_row(
                tech,
                tech.layer("poly").unwrap(),
                &ContactRowParams::new().with_w(um(10)),
            )
            .unwrap(),
        ),
        (
            "mos_transistor",
            mos_transistor(tech, &MosParams::new(MosType::N).with_w(um(10))).unwrap(),
        ),
        (
            "interdigitated",
            interdigitated(tech, &InterdigitParams::new(MosType::N, 4).with_w(um(8))).unwrap(),
        ),
        (
            "stacked",
            stacked_transistor(tech, &StackedParams::new(MosType::N, 4).with_w(um(6))).unwrap(),
        ),
        (
            "diode",
            diode_transistor(tech, &DiodeParams::new(MosType::N).with_w(um(8))).unwrap(),
        ),
        (
            "mirror",
            current_mirror(tech, &MirrorParams::new(MosType::N).with_w(um(6))).unwrap(),
        ),
        (
            "cascode",
            cascode_pair(tech, &CascodeParams::new(MosType::N).with_w(um(6))).unwrap(),
        ),
        (
            "diff_pair",
            diff_pair(tech, &DiffPairParams::new(MosType::N).with_w(um(8))).unwrap(),
        ),
        (
            "centroid_1d",
            centroid_diff_pair(
                tech,
                &CentroidParams::paper(MosType::N)
                    .with_w(um(6))
                    .without_guard(),
            )
            .unwrap(),
        ),
        (
            "centroid_quad_2d",
            common_centroid_quad(tech, &QuadParams::new(MosType::N).with_w(um(6))).unwrap(),
        ),
        (
            "resistor",
            poly_resistor(tech, &ResistorParams::new(5).with_leg_l(um(12)))
                .unwrap()
                .0,
        ),
        (
            "capacitor",
            mos_capacitor(tech, &MosCapParams::new(MosType::N).with_side(um(10)))
                .unwrap()
                .0,
        ),
    ]
}

#[test]
fn every_module_is_short_free_in_both_decks() {
    for tech in [Tech::bicmos_1u(), Tech::cmos_08()] {
        let drc = Drc::new(&tech);
        for (name, m) in mos_library(&tech) {
            let shorts: Vec<_> = drc
                .check_spacing(&m)
                .into_iter()
                .filter(|v| v.kind == ViolationKind::Short)
                .collect();
            assert!(shorts.is_empty(), "{}/{name}: {shorts:?}", tech.name());
            assert!(!m.is_empty(), "{}/{name} empty", tech.name());
        }
    }
}

#[test]
fn every_module_survives_gds_and_cif_round_trips() {
    let tech = Tech::bicmos_1u();
    for (name, m) in mos_library(&tech) {
        let gds = write_gds(&tech, &m);
        let gs = parse_gds_summary(&gds).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(gs.boundaries, m.len(), "{name}");
        let cif = write_cif(&tech, &m);
        let cs = parse_cif_summary(&cif).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(cs.boxes, m.len(), "{name}");
    }
}

#[test]
fn every_module_passes_min_area() {
    let tech = Tech::bicmos_1u();
    let drc = Drc::new(&tech);
    for (name, m) in mos_library(&tech) {
        let v = drc.check_min_area(&m);
        assert!(v.is_empty(), "{name}: {v:?}");
    }
}

#[test]
fn every_module_renders_to_svg() {
    let tech = Tech::bicmos_1u();
    for (name, m) in mos_library(&tech) {
        let svg = render_svg(&tech, &m);
        assert!(svg.ends_with("</svg>\n"), "{name}");
        assert!(svg.matches("<rect ").count() > m.len(), "{name}");
    }
}

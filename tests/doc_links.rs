//! Dead-link checker for the repo's markdown documentation: every
//! relative link target in README.md, DESIGN.md and docs/*.md must
//! exist on disk. External (http/mailto) and pure-anchor links are
//! skipped; `#fragment` suffixes on file links are stripped (anchor
//! names are not verified, only the file).

use std::path::{Path, PathBuf};

/// Extracts the targets of inline markdown links `[text](target)` from
/// `src`, ignoring fenced code blocks (``` ... ```) and inline code
/// spans, where bracket-paren sequences are code, not links.
fn link_targets(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in src.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_code = false;
        while i < bytes.len() {
            match bytes[i] {
                b'`' => in_code = !in_code,
                b']' if !in_code && i + 1 < bytes.len() && bytes[i + 1] == b'(' => {
                    // Scan to the matching close paren (targets here
                    // never contain nested parens).
                    if let Some(off) = line[i + 2..].find(')') {
                        out.push(line[i + 2..i + 2 + off].to_string());
                        i += 2 + off;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

fn check_file(doc: &Path, root: &Path, dead: &mut Vec<String>) {
    let src = std::fs::read_to_string(doc)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc.display()));
    let dir = doc.parent().unwrap_or(root);
    for target in link_targets(&src) {
        let t = target.trim();
        if t.is_empty()
            || t.starts_with('#')
            || t.starts_with("http://")
            || t.starts_with("https://")
            || t.starts_with("mailto:")
        {
            continue;
        }
        let path_part = t.split('#').next().unwrap();
        let resolved = dir.join(path_part);
        if !resolved.exists() {
            dead.push(format!(
                "{}: `{t}` -> {}",
                doc.display(),
                resolved.display()
            ));
        }
    }
}

#[test]
fn relative_doc_links_resolve() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut docs = vec![root.join("README.md"), root.join("DESIGN.md")];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs/ exists") {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|e| e == "md") {
            docs.push(p);
        }
    }
    assert!(
        docs.len() >= 5,
        "expected README, DESIGN and docs/*.md, got {docs:?}"
    );
    assert!(
        docs.iter().any(|d| d.ends_with("docs/SERVING.md")),
        "docs/SERVING.md (the wire contract) must exist and be scanned"
    );

    let mut dead = Vec::new();
    for doc in &docs {
        check_file(doc, &root, &mut dead);
    }
    assert!(dead.is_empty(), "dead relative links:\n{}", dead.join("\n"));
}

#[test]
fn link_extraction_handles_code_and_fences() {
    let src = "\
[a](docs/A.md) and [b](../B.md#frag)\n\
`not [a](link.md)` in code\n\
```\n\
[fenced](nope.md)\n\
```\n\
plain ](stray.md) counts\n";
    let t = link_targets(src);
    assert_eq!(t, vec!["docs/A.md", "../B.md#frag", "stray.md"]);
}

//! Byte-identity parity gate for the spatial index: every consumer that
//! was rewritten onto the index (DRC checks, the latch-up pass,
//! connectivity extraction, parasitics) must reproduce its pre-index
//! linear-scan output *exactly* — same violations, same nets, same
//! parasitics, same order — on the figure workloads. This is what keeps
//! the content-addressed generation cache and layout signatures stable
//! across the indexed rewrite.

use amgen::drc::{latchup, Drc};
use amgen::modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen::modgen::diffpair::{diff_pair, DiffPairParams};
use amgen::modgen::{contact_row, ContactRowParams, MosType};
use amgen::prelude::*;

fn fig01_workload(tech: &Tech, n: usize, every: usize) -> LayoutObject {
    let pdiff = tech.layer("pdiff").unwrap();
    let mut obj = LayoutObject::new("latchup");
    for i in 0..n {
        let x = i as i64 * um(12);
        obj.push(
            Shape::new(pdiff, Rect::new(x, 0, x + um(8), um(6))).with_role(ShapeRole::DeviceActive),
        );
        if i % every == 0 {
            obj.push(
                Shape::new(pdiff, Rect::new(x, um(10), x + um(2), um(12)))
                    .with_role(ShapeRole::SubstrateContact),
            );
        }
    }
    obj
}

fn assert_parity(tech: &Tech, obj: &LayoutObject) {
    let drc = Drc::new(tech);
    let indexed = drc.check(obj);
    let scan = drc.check_scan(obj);
    assert_eq!(indexed, scan, "DRC violations diverged on {}", obj.name());

    let ex = Extractor::new(tech);
    assert_eq!(
        ex.connectivity(obj),
        ex.connectivity_scan(obj),
        "extracted nets diverged on {}",
        obj.name()
    );
    assert_eq!(
        ex.parasitics(obj),
        ex.parasitics_scan(obj),
        "parasitics diverged on {}",
        obj.name()
    );
}

#[test]
fn fig01_latchup_parity_across_contact_densities() {
    let tech = Tech::bicmos_1u();
    for (n, every) in [(8, 3), (32, 3), (64, 64), (128, 5)] {
        let obj = fig01_workload(&tech, n, every);
        let indexed = latchup::latchup_remainder(&tech, &obj);
        let scan = latchup::latchup_remainder_scan(&tech, &obj);
        assert_eq!(
            indexed.rects(),
            scan.rects(),
            "latch-up remainder diverged at n={n}, every={every}"
        );
        assert_parity(&tech, &obj);
    }
}

#[test]
fn fig03_contact_row_parity() {
    let tech = Tech::bicmos_1u();
    let poly = tech.layer("poly").unwrap();
    for params in [
        ContactRowParams::new(),
        ContactRowParams::new().with_w(um(10)),
        ContactRowParams::new().with_w(um(8)).with_l(um(6)),
    ] {
        let row = contact_row(&tech, poly, &params).unwrap();
        assert_parity(&tech, &row);
    }
}

#[test]
fn fig06_diff_pair_parity() {
    let tech = Tech::bicmos_1u();
    let pair = diff_pair(
        &tech,
        &DiffPairParams::new(MosType::P).with_w(um(10)).with_l(um(2)),
    )
    .unwrap();
    assert_parity(&tech, &pair);
}

#[test]
fn fig10_centroid_parity() {
    let tech = Tech::bicmos_1u();
    let centroid = centroid_diff_pair(
        &tech,
        &CentroidParams::paper(MosType::N)
            .with_w(um(6))
            .with_l(um(1)),
    )
    .unwrap();
    assert_parity(&tech, &centroid);
}

//! Consistency check between the error-code table in `docs/SERVING.md`
//! and the server's wire enum `ErrorCode::ALL`: every code appears
//! exactly once, in the same order, with its phase. The table is the
//! wire contract of record — this test is what lets it claim to be
//! authoritative. (Same pattern as `doc_codes.rs` for the lint
//! catalogue.)

use amgen::serve::ErrorCode;
use std::path::PathBuf;

/// Parses `(code, phase)` pairs from the error-code table: rows of the
/// form ``| `PROTO_BAD_FRAME` | protocol | ... |`` following the
/// `| code | phase | meaning |` header.
fn table_rows(doc: &str) -> Vec<(String, String)> {
    let mut rows = Vec::new();
    let mut in_table = false;
    for line in doc.lines() {
        let line = line.trim();
        if line.starts_with("| code | phase |") {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        if !line.starts_with('|') {
            break;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.first().is_some_and(|c| c.starts_with('-')) {
            continue;
        }
        assert!(
            cells.len() == 3,
            "malformed table row (want 3 cells): {line}"
        );
        rows.push((cells[0].trim_matches('`').to_string(), cells[1].to_string()));
    }
    rows
}

#[test]
fn serving_md_error_table_matches_error_code_all() {
    let doc = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("docs/SERVING.md");
    let doc = std::fs::read_to_string(&doc)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc.display()));
    let rows = table_rows(&doc);

    assert_eq!(
        rows.len(),
        ErrorCode::ALL.len(),
        "docs/SERVING.md error table has {} rows but ErrorCode::ALL has {} codes",
        rows.len(),
        ErrorCode::ALL.len()
    );
    for (row, code) in rows.iter().zip(ErrorCode::ALL) {
        assert_eq!(
            row.0,
            code.as_str(),
            "table row order diverges from ErrorCode::ALL at {}",
            row.0
        );
        assert_eq!(
            row.1,
            code.phase().name(),
            "{} documented in phase `{}` but the wire enum says `{}`",
            row.0,
            row.1,
            code.phase().name()
        );
    }
}

#[test]
fn wire_spellings_follow_the_naming_convention() {
    // Protocol-layer codes carry the PROTO_ prefix (they mean "fix the
    // client", not "fix the program"); all spellings are
    // SCREAMING_SNAKE_CASE and unique.
    let mut seen = std::collections::BTreeSet::new();
    for code in ErrorCode::ALL {
        let s = code.as_str();
        assert!(
            s.chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'),
            "{s} is not SCREAMING_SNAKE_CASE"
        );
        assert!(seen.insert(s), "{s} appears twice");
        if s.starts_with("PROTO_") {
            assert_eq!(
                code.phase().name(),
                "protocol",
                "{s} carries the PROTO_ prefix outside the protocol phase"
            );
        }
    }
}

#[test]
fn table_parser_sees_the_full_taxonomy() {
    // Guard the parser itself: if the table header is reworded, fail
    // loudly instead of vacuously passing on zero rows.
    let doc = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("docs/SERVING.md");
    let doc = std::fs::read_to_string(doc).unwrap();
    assert!(
        table_rows(&doc).len() >= 16,
        "error-code table not found or truncated in docs/SERVING.md"
    );
}

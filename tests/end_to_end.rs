//! Repository-level end-to-end tests: the invariants the experiment
//! harness reports, asserted.

use amgen::drc::latchup;
use amgen::dsl::{stdlib, Interpreter};
use amgen::modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen::modgen::{contact_row, ContactRowParams, MosType};
use amgen::prelude::*;

/// Fig. 3's three shapes: one contact, a 5x1 row, a 4x3 array.
#[test]
fn fig3_contact_patterns() {
    let tech = Tech::bicmos_1u();
    let poly = tech.layer("poly").unwrap();
    let ct = tech.layer("contact").unwrap();
    let grid = |p: &ContactRowParams| {
        let row = contact_row(&tech, poly, p).unwrap();
        let xs: std::collections::HashSet<i64> = row.shapes_on(ct).map(|s| s.rect.x0).collect();
        let ys: std::collections::HashSet<i64> = row.shapes_on(ct).map(|s| s.rect.y0).collect();
        (xs.len(), ys.len())
    };
    assert_eq!(grid(&ContactRowParams::new()), (1, 1));
    assert_eq!(grid(&ContactRowParams::new().with_w(um(10))), (5, 1));
    assert_eq!(
        grid(&ContactRowParams::new().with_w(um(8)).with_l(um(6))),
        (4, 3)
    );
}

/// Fig. 5b's ablation: variable edges strictly reduce the footprint.
#[test]
fn fig5_variable_edges_reduce_area() {
    let tech = Tech::bicmos_1u();
    let poly = tech.layer("poly").unwrap();
    let m1 = tech.layer("metal1").unwrap();
    let comp = Compactor::new(&tech);
    let width = |variable: bool| {
        let mut p = ContactRowParams::new().with_w(um(4)).with_l(um(12));
        if variable {
            p = p.with_variable_edges();
        }
        let row = contact_row(&tech, poly, &p).unwrap();
        let mut probe = LayoutObject::new("probe");
        let sig = probe.net("sig");
        probe.push(Shape::new(m1, Rect::new(0, 0, um(2), um(12))).with_net(sig));
        let mut main = LayoutObject::new("main");
        comp.compact(&mut main, &row, Dir::West, &CompactOptions::new())
            .unwrap();
        comp.compact(&mut main, &probe, Dir::East, &CompactOptions::new())
            .unwrap();
        main.bbox().width()
    };
    assert!(width(true) < width(false));
}

/// The paper's full flow in one test: DSL source → module → DRC → export.
#[test]
fn dsl_to_gds_pipeline() {
    let tech = Tech::bicmos_1u();
    let mut i = Interpreter::new(&tech);
    i.load(stdlib::FIG2_CONTACT_ROW).unwrap();
    i.load(stdlib::FIG7_DIFF_PAIR).unwrap();
    let out = i.run("diff = DiffPair(W = 8, L = 1)\n").unwrap();
    let pair = &out["diff"];
    assert!(Drc::new(&tech).check_spacing(pair).is_empty());
    let gds = write_gds(&tech, pair);
    let summary = amgen::export::parse_gds_summary(&gds).unwrap();
    assert_eq!(summary.boundaries, pair.len());
    let svg = render_svg(&tech, pair);
    assert!(svg.contains("</svg>"));
}

/// Fig. 10's three headline properties, asserted together.
#[test]
fn fig10_headline_properties() {
    let tech = Tech::bicmos_1u();
    let m = centroid_diff_pair(
        &tech,
        &CentroidParams::paper(MosType::N)
            .with_w(um(6))
            .with_l(um(1)),
    )
    .unwrap();
    // 1. 8 active + 16 dummy fingers.
    let poly = tech.layer("poly").unwrap();
    let fingers = m
        .shapes_on(poly)
        .filter(|s| s.rect.height() > 3 * s.rect.width())
        .count();
    assert_eq!(fingers, 24);
    // 2. identical crossings on the matched drains.
    let counts = Router::new(&tech).crossing_counts(&m);
    let get = |n: &str| counts.iter().find(|(x, _)| x == n).unwrap().1;
    assert_eq!(get("d1"), get("d2"));
    // 3. substrate contacts included → latch-up clean.
    assert!(latchup::check_latchup(&tech, &m).is_empty());
}

/// T-code: the DSL is at least 5x shorter than the coordinate baseline.
#[test]
fn dsl_is_shorter_than_coordinate_code() {
    let count = |src: &str| {
        src.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//"))
            .count()
    };
    let dsl = count(stdlib::FIG2_CONTACT_ROW);
    let baseline = count(
        amgen::modgen::baseline::BASELINE_SOURCE
            .split("#[cfg(test)]")
            .next()
            .unwrap(),
    );
    assert!(baseline > 5 * dsl, "{baseline} vs {dsl}");
}

/// The amplifier regenerates deterministically.
#[test]
fn amplifier_is_deterministic() {
    let tech = Tech::bicmos_1u();
    let (a, ra) = amgen::amp::build_amplifier(&tech).unwrap();
    let (b, rb) = amgen::amp::build_amplifier(&tech).unwrap();
    assert_eq!(a.shapes(), b.shapes());
    assert_eq!(ra.width_um, rb.width_um);
}

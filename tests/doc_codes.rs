//! Consistency check between the lint catalogue table in
//! `docs/LANGUAGE.md` and the linter's `Code::ALL`: every code appears
//! exactly once, in the same order, with the severity its `E`/`W`
//! prefix implies. The table is the documentation of record — this test
//! is what lets it claim to be authoritative.

use amgen::lint::{Code, Severity};
use std::path::PathBuf;

/// Parses `(code, severity)` pairs from the catalogue table: rows of
/// the form `| E201 | error | ... |` following the
/// `| code | severity | meaning |` header.
fn table_rows(doc: &str) -> Vec<(String, String)> {
    let mut rows = Vec::new();
    let mut in_table = false;
    for line in doc.lines() {
        let line = line.trim();
        if line.starts_with("| code |") {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        if !line.starts_with('|') {
            break;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        // Skip the `|---|` separator row under the header.
        if cells.first().is_some_and(|c| c.starts_with('-')) {
            continue;
        }
        assert!(
            cells.len() == 3,
            "malformed catalogue row (want 3 cells): {line}"
        );
        rows.push((cells[0].to_string(), cells[1].to_string()));
    }
    rows
}

#[test]
fn language_md_code_table_matches_code_all() {
    let doc = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("docs/LANGUAGE.md");
    let doc = std::fs::read_to_string(&doc)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc.display()));
    let rows = table_rows(&doc);

    assert_eq!(
        rows.len(),
        Code::ALL.len(),
        "docs/LANGUAGE.md catalogue has {} rows but Code::ALL has {} codes",
        rows.len(),
        Code::ALL.len()
    );
    for (row, code) in rows.iter().zip(Code::ALL) {
        assert_eq!(
            row.0,
            code.as_str(),
            "catalogue row order diverges from Code::ALL at {}",
            row.0
        );
        let want = match code.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        assert_eq!(
            row.1, want,
            "{} documented as `{}` but its intrinsic severity is `{want}`",
            row.0, row.1
        );
    }
}

#[test]
fn severity_prefix_convention_holds() {
    // The table's severity column is derivable from the code prefix;
    // make sure the linter actually upholds that convention, since the
    // doc paragraph asserts it.
    for code in Code::ALL {
        let s = code.as_str();
        let want = if s.starts_with('E') {
            Severity::Error
        } else {
            assert!(s.starts_with('W'), "code {s} has an unknown prefix");
            Severity::Warning
        };
        assert_eq!(code.severity(), want, "{s}");
    }
}

#[test]
fn table_parser_sees_the_full_catalogue() {
    // Guard the parser itself: if the table header is reworded or the
    // table moves, this fails loudly instead of vacuously passing on
    // zero rows.
    let doc = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("docs/LANGUAGE.md");
    let doc = std::fs::read_to_string(doc).unwrap();
    assert!(
        table_rows(&doc).len() >= 23,
        "catalogue table not found or truncated in docs/LANGUAGE.md"
    );
}

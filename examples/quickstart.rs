//! Quickstart: generate the paper's Fig. 2 contact row from its layout
//! description language source, check it, and export it.
//!
//! ```sh
//! cargo run --example quickstart
//! # with a Chrome trace of every pipeline stage (chrome://tracing):
//! cargo run --example quickstart -- --trace quickstart.json
//! ```

use amgen::prelude::*;

fn main() {
    // 1. Pick a technology (the built-in synthetic 1 µm BiCMOS deck).
    let tech = Tech::bicmos_1u();

    // 2. Write a module in the layout description language — the exact
    //    source of the paper's Fig. 2, plus a call line.
    let source = r#"
row = ContactRow(layer = "poly", W = 10)

ENT ContactRow(layer, <W>, <L>)
  INBOX(layer, W, L)
  INBOX("metal1")
  ARRAY("contact")
"#;

    // 3. Run it — through a shared generation context so the optional
    //    `--trace` flag sees every stage (DSL, primitives, compaction,
    //    DRC) on one timeline.
    let trace_path = amgen::trace::trace_path_from_args();
    let ctx = GenCtx::from_tech(&tech).with_tracing_at(if trace_path.is_some() {
        Detail::Fine
    } else {
        Detail::Off
    });
    let mut interp = Interpreter::new(&ctx);
    let objects = interp.run(source).expect("program runs");
    let row = &objects["row"];
    println!(
        "generated `{}`: {} shapes, {:.1} x {:.1} um",
        row.name(),
        row.len(),
        row.bbox().width() as f64 / 1e3,
        row.bbox().height() as f64 / 1e3,
    );

    // 4. Verify the design rules (the environment already guaranteed
    //    them; the checker is the independent referee).
    let violations = Drc::new(&ctx).check(row);
    println!("DRC: {} violation(s)", violations.len());
    assert!(violations.is_empty());

    // 5. Export.
    std::fs::create_dir_all("out").expect("create out/");
    std::fs::write("out/quickstart.svg", render_svg(&tech, row)).expect("write svg");
    std::fs::write("out/quickstart.gds", write_gds(&tech, row)).expect("write gds");
    println!("wrote out/quickstart.svg and out/quickstart.gds");

    // 6. Optionally dump the structured trace + run report.
    if let Some(path) = trace_path {
        println!("\n{}", ctx.run_report());
        ctx.trace
            .drain()
            .write_chrome_file(&path)
            .expect("write trace");
        println!("chrome trace written to {}", path.display());
    }
}

//! Quickstart: generate the paper's Fig. 2 contact row from its layout
//! description language source, check it, and export it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use amgen::prelude::*;

fn main() {
    // 1. Pick a technology (the built-in synthetic 1 µm BiCMOS deck).
    let tech = Tech::bicmos_1u();

    // 2. Write a module in the layout description language — the exact
    //    source of the paper's Fig. 2, plus a call line.
    let source = r#"
row = ContactRow(layer = "poly", W = 10)

ENT ContactRow(layer, <W>, <L>)
  INBOX(layer, W, L)
  INBOX("metal1")
  ARRAY("contact")
"#;

    // 3. Run it.
    let mut interp = Interpreter::new(&tech);
    let objects = interp.run(source).expect("program runs");
    let row = &objects["row"];
    println!(
        "generated `{}`: {} shapes, {:.1} x {:.1} um",
        row.name(),
        row.len(),
        row.bbox().width() as f64 / 1e3,
        row.bbox().height() as f64 / 1e3,
    );

    // 4. Verify the design rules (the environment already guaranteed
    //    them; the checker is the independent referee).
    let violations = Drc::new(&tech).check(row);
    println!("DRC: {} violation(s)", violations.len());
    assert!(violations.is_empty());

    // 5. Export.
    std::fs::create_dir_all("out").expect("create out/");
    std::fs::write("out/quickstart.svg", render_svg(&tech, row)).expect("write svg");
    std::fs::write("out/quickstart.gds", write_gds(&tech, row)).expect("write gds");
    println!("wrote out/quickstart.svg and out/quickstart.gds");
}

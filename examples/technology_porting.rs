//! Technology independence end to end: the same module source generates
//! rule-clean layouts in the built-in BiCMOS deck, the built-in CMOS
//! deck, **and a custom deck supplied as tech-file text** — including a
//! hand-scaled 2 µm variant to show areas track the rules.
//!
//! ```sh
//! cargo run --example technology_porting
//! ```

use amgen::dsl::stdlib;
use amgen::prelude::*;
use amgen::tech::builtin::BICMOS_1U;

/// Scales every dimension statement of a deck by an integer factor —
/// a deliberately crude "process shrink in reverse" for the demo.
fn scale_deck(deck: &str, factor: i64, name: &str) -> String {
    deck.lines()
        .map(|line| {
            let mut parts: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            match parts.first().map(String::as_str) {
                Some("tech") => format!("tech {name}"),
                Some("grid") | Some("latchup") | Some("width") | Some("space")
                | Some("enclose") | Some("extend") | Some("cutsize") => {
                    if let Some(last) = parts.last_mut() {
                        if let Ok(v) = last.parse::<i64>() {
                            *last = (v * factor).to_string();
                        }
                    }
                    parts.join(" ")
                }
                _ => line.to_string(),
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let scaled_text = scale_deck(BICMOS_1U, 2, "bicmos_2u");
    let decks = [
        Tech::bicmos_1u(),
        Tech::cmos_08(),
        Tech::parse(&scaled_text).expect("scaled deck parses"),
    ];
    let source = "diff = DiffPair(W = 10, L = 2)\n";
    println!("one source, three processes: `{}`", source.trim());
    let mut areas = Vec::new();
    for tech in &decks {
        let mut interp = Interpreter::new(tech);
        interp.load(stdlib::FIG2_CONTACT_ROW).unwrap();
        interp.load(stdlib::FIG7_DIFF_PAIR).unwrap();
        let out = interp.run(source).expect("module generates");
        let pair = &out["diff"];
        let v = Drc::new(tech).check_spacing(pair);
        assert!(v.is_empty(), "{}: {v:?}", tech.name());
        let bb = pair.bbox();
        let area = bb.area() as f64 / 1e6;
        println!(
            "  {:10} -> {:6.1} x {:5.1} um = {:8.0} um^2, {} shapes, DRC clean",
            tech.name(),
            bb.width() as f64 / 1e3,
            bb.height() as f64 / 1e3,
            area,
            pair.len(),
        );
        areas.push((tech.name().to_string(), area));
    }
    // The 2x-scaled deck should cost roughly 4x the area of the 1 µm one
    // (W/L were given in µm, so only the rule-driven parts scale).
    let a1 = areas.iter().find(|(n, _)| n == "bicmos_1u").unwrap().1;
    let a2 = areas.iter().find(|(n, _)| n == "bicmos_2u").unwrap().1;
    println!(
        "  2 um deck / 1 um deck area ratio: {:.2} (rule-driven geometry scales)",
        a2 / a1
    );
    assert!(a2 > 1.5 * a1);
}

//! Figs. 6/7: the five-step MOS differential pair, built through the
//! layout description language exactly as the paper prints it.
//!
//! ```sh
//! cargo run --example diffpair
//! ```

use amgen::dsl::stdlib;
use amgen::prelude::*;

fn main() {
    let tech = Tech::bicmos_1u();
    let mut interp = Interpreter::new(&tech);
    interp.load(stdlib::FIG2_CONTACT_ROW).expect("load Fig. 2");
    interp.load(stdlib::FIG7_DIFF_PAIR).expect("load Fig. 7");

    println!("Fig. 7 source (as shipped in amgen_dsl::stdlib):");
    for line in stdlib::FIG7_DIFF_PAIR
        .lines()
        .filter(|l| !l.trim().is_empty())
    {
        println!("  {line}");
    }

    let out = interp
        .run("diff = DiffPair(W = 10, L = 2)\n")
        .expect("DiffPair builds");
    let pair = &out["diff"];
    let bb = pair.bbox();
    println!();
    println!(
        "DiffPair(W = 10, L = 2): {} shapes, {:.1} x {:.1} um",
        pair.len(),
        bb.width() as f64 / 1e3,
        bb.height() as f64 / 1e3,
    );

    // The paper's structural claim: "two transistors, three
    // diffusion-contact-rows and two poly-contacts".
    let poly = tech.layer("poly").unwrap();
    let gates = pair
        .shapes_on(poly)
        .filter(|s| s.rect.height() > 3 * s.rect.width())
        .count();
    println!("gate stripes: {gates} (paper: 2 transistors)");

    let violations = Drc::new(&tech).check_spacing(pair);
    println!("spacing DRC: {} violation(s)", violations.len());
    assert!(violations.is_empty());

    std::fs::create_dir_all("out").expect("create out/");
    std::fs::write("out/fig6_diffpair.svg", render_svg(&tech, pair)).expect("svg");
    std::fs::write("out/fig6_diffpair.gds", write_gds(&tech, pair)).expect("gds");
    println!("wrote out/fig6_diffpair.svg and out/fig6_diffpair.gds");
}

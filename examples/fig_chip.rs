//! The chip-scale workload: the full Fig. 9 amplifier (blocks A–F with
//! guard rings and routing) replicated into a grid, then checked and
//! extracted through the spatial index — the paper's module generators
//! driven at full-chip shape counts.
//!
//! ```sh
//! cargo run --release --example fig_chip
//! ```

use amgen::amp::build_amplifier;
use amgen::drc::latchup;
use amgen::prelude::*;
use std::time::Instant;

fn main() {
    let tech = Tech::bicmos_1u();
    let ctx = GenCtx::from_tech(&tech).with_default_cache();

    // The prototype tile is generated once; replication is assembly.
    let t0 = Instant::now();
    let (proto, report) = build_amplifier(&ctx).unwrap();
    println!(
        "prototype amplifier: {} shapes, {:.0} x {:.0} um, generated in {:.1} ms",
        proto.len(),
        report.width_um,
        report.height_um,
        t0.elapsed().as_secs_f64() * 1e3
    );

    let rep = 10usize;
    let bb = proto.bbox();
    let (pitch_x, pitch_y) = (bb.width() + um(20), bb.height() + um(40));
    let cols = (rep as u64).isqrt().max(1) as usize;
    let t0 = Instant::now();
    let mut chip = LayoutObject::with_capacity("fig_chip", rep * proto.len());
    for i in 0..rep {
        let (r, c) = (i / cols, i % cols);
        let v = Vector::new(c as i64 * pitch_x - bb.x0, r as i64 * pitch_y - bb.y0);
        chip.absorb(&proto, v);
    }
    println!(
        "chip: {rep} tiles, {} shapes, assembled in {:.1} ms",
        chip.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Index-backed geometry passes at chip scale.
    let t0 = Instant::now();
    chip.spatial_index();
    println!(
        "spatial index built in {:.1} ms over {} shapes",
        t0.elapsed().as_secs_f64() * 1e3,
        chip.len()
    );

    let t0 = Instant::now();
    let latchup_rem = latchup::latchup_remainder(&ctx, &chip);
    println!(
        "latch-up check: {} uncovered rect(s) in {:.1} ms",
        latchup_rem.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    let t0 = Instant::now();
    let nets = Extractor::new(&ctx).connectivity(&chip);
    println!(
        "extraction: {} nets in {:.1} ms",
        nets.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    assert!(
        latchup_rem.is_empty(),
        "replicated amplifier stays latch-up clean"
    );
    assert_eq!(chip.len(), rep * proto.len());
}

//! The twin-window experience of the original environment: *"During
//! programming the environment supports two windows, a text window for
//! the source code and a corresponding graphical view of the module."*
//!
//! `Interpreter::run_traced` snapshots the object map after every
//! top-level statement; this example renders each snapshot to an SVG so
//! you can watch the modules appear statement by statement.
//!
//! ```sh
//! cargo run --example dsl_live_view
//! ```

use amgen::dsl::stdlib;
use amgen::prelude::*;

fn main() {
    let tech = Tech::bicmos_1u();
    let mut interp = Interpreter::new(&tech);
    interp.load(stdlib::FIG2_CONTACT_ROW).unwrap();
    interp.load(stdlib::FIG7_DIFF_PAIR).unwrap();

    let src = r#"
gatecon = ContactRow(layer = "poly", W = 6)
trans = Trans(W = 10, L = 2)
diff = DiffPair(W = 10, L = 2)
"#;
    let (final_map, snapshots) = interp.run_traced(src).expect("program runs");
    std::fs::create_dir_all("out").expect("create out/");
    println!("live view — one SVG per statement:");
    for (i, (stmt, state)) in snapshots.iter().enumerate() {
        println!("  [{i}] {stmt}");
        for (name, obj) in state {
            println!(
                "        {name}: {} shapes, {:.1} x {:.1} um",
                obj.len(),
                obj.bbox().width() as f64 / 1e3,
                obj.bbox().height() as f64 / 1e3
            );
        }
        // Render the object the statement assigned.
        let target = stmt.split('=').next().unwrap_or("").trim().to_string();
        if let Some(obj) = state.get(&target) {
            let path = format!("out/live_{i}_{target}.svg");
            std::fs::write(&path, render_svg(&tech, obj)).expect("write svg");
            println!("        wrote {path}");
        }
    }
    assert_eq!(final_map.len(), 3);
}

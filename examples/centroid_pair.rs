//! Fig. 10: the centroidal cross-coupled differential pair of block E —
//! 8 centre dummies, 4 dummies per side, fully symmetric wiring with
//! identical crossings, substrate contacts included.
//!
//! ```sh
//! cargo run --example centroid_pair
//! ```

use amgen::drc::latchup;
use amgen::modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen::modgen::MosType;
use amgen::prelude::*;
use std::time::Instant;

fn main() {
    let tech = Tech::bicmos_1u();
    let params = CentroidParams::paper(MosType::N)
        .with_w(um(6))
        .with_l(um(1));
    let t0 = Instant::now();
    let module = centroid_diff_pair(&tech, &params).expect("module builds");
    let elapsed = t0.elapsed();
    let bb = module.bbox();
    println!("block E (paper configuration):");
    println!(
        "  {} shapes, {:.1} x {:.1} um, built in {:.1} ms (paper: 5 s on 1996 hardware)",
        module.len(),
        bb.width() as f64 / 1e3,
        bb.height() as f64 / 1e3,
        elapsed.as_secs_f64() * 1e3,
    );

    // "every net has identical crossings" — the audit.
    let counts = Router::new(&tech).crossing_counts(&module);
    let get = |n: &str| {
        counts
            .iter()
            .find(|(x, _)| x == n)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    println!("  crossings: d1 = {}, d2 = {}", get("d1"), get("d2"));
    assert_eq!(get("d1"), get("d2"));

    // "substrate or well contacts are included into the modules" — the
    // latch-up rule passes without any external help.
    let lu = latchup::check_latchup(&tech, &module);
    println!("  latch-up check: {} violation(s)", lu.len());
    assert!(lu.is_empty());

    // Matched parasitics on the two drains.
    let nets = Extractor::new(&tech).parasitics(&module);
    for name in ["d1", "d2"] {
        if let Some(n) = nets.iter().find(|n| n.name.as_deref() == Some(name)) {
            println!("  C({name}) = {:.1} fF", n.cap_af / 1e3);
        }
    }

    std::fs::create_dir_all("out").expect("create out/");
    std::fs::write("out/fig10_centroid.svg", render_svg(&tech, &module)).expect("svg");
    std::fs::write("out/fig10_centroid.gds", write_gds(&tech, &module)).expect("gds");
    println!("wrote out/fig10_centroid.svg and out/fig10_centroid.gds");
}

//! Figs. 8/9: the complete broad-band BiCMOS amplifier — six blocks with
//! per-block matching styles, placement, supply rails and global signal
//! routing, then measurement against the paper's reported layout.
//!
//! ```sh
//! cargo run --example bicmos_amplifier
//! ```

use amgen::amp::build_amplifier;
use amgen::prelude::*;
use std::time::Instant;

fn main() {
    let tech = Tech::bicmos_1u();
    let t0 = Instant::now();
    let (amp, report) = build_amplifier(&tech).expect("amplifier builds");
    let elapsed = t0.elapsed();

    println!("BiCMOS amplifier (paper section 3):");
    println!("  blocks:");
    for (name, w, h) in &report.blocks {
        println!("    {name:20} {w:7.1} x {h:6.1} um");
    }
    println!(
        "  total: {:.1} x {:.1} um = {:.0} um^2 (paper: 592 x 481 um in the Siemens process)",
        report.width_um,
        report.height_um,
        report.width_um * report.height_um,
    );
    println!(
        "  built + checked + extracted in {:.2} s",
        elapsed.as_secs_f64()
    );
    println!(
        "  shorts: {}   latch-up clean: {}",
        report.shorts, report.latchup_clean
    );
    println!("  output net capacitance: {:.1} fF", report.output_cap_ff);
    assert_eq!(report.shorts, 0);
    assert!(report.latchup_clean);

    std::fs::create_dir_all("out").expect("create out/");
    std::fs::write("out/fig9_amplifier.svg", render_svg(&tech, &amp)).expect("svg");
    std::fs::write("out/fig9_amplifier.gds", write_gds(&tech, &amp)).expect("gds");
    println!("wrote out/fig9_amplifier.svg and out/fig9_amplifier.gds");
}

//! Fig. 1: the latch-up rule check — temporary rectangles around the
//! substrate contacts must jointly cover every MOS active area; uncovered
//! remainders mean *"additional substrate contacts have to be inserted"*.
//!
//! ```sh
//! cargo run --example latchup_check
//! ```

use amgen::drc::latchup;
use amgen::prelude::*;

fn main() {
    let tech = Tech::bicmos_1u();
    let pdiff = tech.layer("pdiff").unwrap();
    let d = tech.latchup_distance();
    println!(
        "latch-up coverage distance in {}: {} um",
        tech.name(),
        d as f64 / 1e3
    );

    // A long active stripe, 3x the coverage distance.
    let mut obj = LayoutObject::new("demo");
    obj.push(Shape::new(pdiff, Rect::new(0, 0, 3 * d, um(6))).with_role(ShapeRole::DeviceActive));

    // One contact at the west end: the east part stays uncovered.
    obj.push(
        Shape::new(pdiff, Rect::new(-um(2), 0, 0, um(2))).with_role(ShapeRole::SubstrateContact),
    );
    let rem = latchup::latchup_remainder(&tech, &obj);
    println!("with 1 contact: {} uncovered remainder rect(s)", rem.len());
    for r in rem.rects() {
        println!(
            "  uncovered: x = {:.0}..{:.0} um",
            r.x0 as f64 / 1e3,
            r.x1 as f64 / 1e3
        );
    }
    assert!(!rem.is_empty());

    // A second contact past the midpoint finishes the cover — the
    // two temporary rectangles jointly enclose the stripe (the paper's
    // 16 overlap cases resolve piece by piece).
    obj.push(
        Shape::new(pdiff, Rect::new(2 * d, 0, 2 * d + um(2), um(2)))
            .with_role(ShapeRole::SubstrateContact),
    );
    let rem = latchup::latchup_remainder(&tech, &obj);
    println!("with 2 contacts: {} uncovered remainder rect(s)", rem.len());
    assert!(rem.is_empty());
    println!("latch-up rule fulfilled");
}

//! §2.4 optimization mode from the outside: search the compaction order
//! of a handful of objects, sequentially and in parallel, and show the
//! best-effort answer when the node budget is too small to finish.
//!
//! ```sh
//! cargo run --release --example optimize_order
//! # with a Chrome trace of the search (one track per optimizer worker —
//! # load the file in chrome://tracing or https://ui.perfetto.dev):
//! cargo run --release --example optimize_order -- --trace opt.json
//! ```

use amgen::opt::{Optimizer, RatingWeights, SearchOptions, Step};
use amgen::prelude::*;

fn steps(tech: &Tech, k: usize) -> Vec<Step> {
    let poly = tech.layer("poly").unwrap();
    let mut seed = LayoutObject::new("L");
    seed.push(Shape::new(poly, Rect::new(0, 0, um(1), um(8))));
    seed.push(Shape::new(poly, Rect::new(0, 0, um(8), um(1))));
    let mut out = vec![Step::new(seed, Dir::East, CompactOptions::new())];
    for i in 0..k {
        let y0 = (i as i64 % 3) * um(3);
        let mut sq = LayoutObject::new("sq");
        sq.push(Shape::new(poly, Rect::new(0, y0, um(2), y0 + um(2))));
        out.push(Step::new(sq, Dir::East, CompactOptions::new()));
    }
    out
}

fn main() {
    let tech = Tech::bicmos_1u();
    let trace_path = amgen::trace::trace_path_from_args();
    // Full detail: a one-shot run wants every node expansion in the
    // trace, not just the stage-level spans.
    let ctx = GenCtx::from_tech(&tech).with_tracing_at(if trace_path.is_some() {
        Detail::Fine
    } else {
        Detail::Off
    });
    let opt = Optimizer::new(&ctx, RatingWeights::default());

    let s = steps(&tech, 5);
    let seq = opt.optimize_order(&s, SearchOptions::default()).unwrap();
    // Pin the worker count (instead of auto-sizing to the CPU count) so
    // the parallel search — and its per-worker trace tracks — looks the
    // same on every machine. The result is schedule-independent.
    let par = opt
        .optimize_order(
            &s,
            SearchOptions {
                workers: 4,
                ..SearchOptions::parallel()
            },
        )
        .unwrap();
    println!(
        "sequential: score {:.1}, order {:?}, {} explored / {} pruned / {} dominated, {:.1} ms",
        seq.rating.score,
        seq.order,
        seq.explored,
        seq.pruned,
        seq.dominated,
        seq.wall.as_secs_f64() * 1e3
    );
    println!(
        "parallel:   score {:.1}, order {:?}, {} workers, {:.1} ms",
        par.rating.score,
        par.order,
        par.workers,
        par.wall.as_secs_f64() * 1e3
    );
    assert_eq!(seq.order, par.order, "searches must agree");

    // A budget far too small for 10 objects: the search reports a
    // best-effort order (`complete: false`) instead of failing.
    let s = steps(&tech, 9);
    let tight = opt
        .optimize_order(
            &s,
            SearchOptions {
                max_nodes: 4,
                ..Default::default()
            },
        )
        .unwrap();
    println!(
        "tight budget: complete = {}, order {:?}, score {:.1}",
        tight.complete, tight.order, tight.rating.score
    );
    assert!(!tight.complete);
    assert_eq!(tight.order.len(), s.len());

    if let Some(path) = trace_path {
        println!("\n{}", ctx.run_report());
        ctx.trace.drain().write_chrome_file(&path).unwrap();
        println!("chrome trace written to {}", path.display());
    }
}

//! Figs. 2/3: the contact row in its three parameter variants —
//! *"In the left example, both parameters W and L were omitted, in the
//! middle example only the parameter L was omitted and in the right
//! example W and L have been defined."*
//!
//! ```sh
//! cargo run --example contact_row
//! ```

use amgen::modgen::{contact_row, ContactRowParams};
use amgen::prelude::*;

fn main() {
    let tech = Tech::bicmos_1u();
    let poly = tech.layer("poly").unwrap();
    let ct = tech.layer("contact").unwrap();
    std::fs::create_dir_all("out").expect("create out/");

    let variants: [(&str, ContactRowParams); 3] = [
        ("left (defaults)", ContactRowParams::new()),
        ("middle (W = 10 um)", ContactRowParams::new().with_w(um(10))),
        (
            "right (W = 8, L = 6 um)",
            ContactRowParams::new().with_w(um(8)).with_l(um(6)),
        ),
    ];
    println!("Fig. 3 — contact row variants in {}:", tech.name());
    for (i, (name, params)) in variants.into_iter().enumerate() {
        let row = contact_row(&tech, poly, &params).expect("row generates");
        let bb = row.bbox();
        println!(
            "  {name:22} -> {:5.1} x {:4.1} um, {} contact(s), {} shapes",
            bb.width() as f64 / 1e3,
            bb.height() as f64 / 1e3,
            row.shapes_on(ct).count(),
            row.len(),
        );
        let v = Drc::new(&tech).check(&row);
        assert!(v.is_empty(), "{v:?}");
        let path = format!("out/fig3_variant{}.svg", i + 1);
        std::fs::write(&path, render_svg(&tech, &row)).expect("write svg");
        println!("{:26}wrote {path}", "");
    }

    // The same module source, other technology — the portability claim.
    let cmos = Tech::cmos_08();
    let poly8 = cmos.layer("poly").unwrap();
    let row = contact_row(&cmos, poly8, &ContactRowParams::new().with_w(um(10))).unwrap();
    println!(
        "same module in {}: {:.1} x {:.1} um, {} contacts",
        cmos.name(),
        row.bbox().width() as f64 / 1e3,
        row.bbox().height() as f64 / 1e3,
        row.shapes_on(cmos.layer("contact").unwrap()).count(),
    );
}

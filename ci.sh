#!/usr/bin/env bash
# Repo CI gate: build, test, formatting and lints — all warnings fatal.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test --workspace -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
echo "ci: all checks passed"

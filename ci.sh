#!/usr/bin/env bash
# Repo CI gate: build, test, formatting and lints — all warnings fatal.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test --workspace -q
# Rustdoc examples are part of the contract (amgen-core and amgen-trace
# warn on missing docs; their doc-examples must keep compiling and passing).
cargo test --doc --workspace -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
# The analyzer crate is new surface — hold it to the same bar explicitly.
cargo clippy -p amgen-lint --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q
# Lint gate: every DSL program in the repo must lint clean — the .amg
# example sets and the embedded paper programs, warnings fatal.
cargo run --release -q --bin amgen-lint -- --deny-warnings --time --examples examples/*.amg
# Certification gate: the same corpus must carry cost certificates and
# stay certifiable under a generous concrete fuel limit (E502/W504
# fire only if a program provably cannot fit), warnings fatal.
cargo run --release -q --bin amgen-lint -- --deny-warnings --certify --certify-fuel 100000 --stdlib examples/*.amg > /dev/null
# Bench smoke: the rule-kernel microbench doubles as a fast end-to-end
# exercise of the compiled RuleSet path.
cargo bench -p amgen-bench --bench rule_lookup
# Tracing overhead smoke: the coarse-traced Fig. 6 generator must stay
# within 10% of the untraced run (the bench asserts and exits nonzero).
cargo bench -p amgen-bench --bench trace_overhead
# Chaos gate: the seeded fault-injection sweep over the figure workloads
# (no panic escapes a public API, every failure is typed and staged, the
# optimizer never wedges) runs in release to also exercise the optimized
# unwind paths.
cargo test --release -q -p amgen-faults
# Panic isolation depends on unwinding: reject any attempt to switch a
# workspace crate (or profile) to panic="abort".
if grep -rn 'panic *= *"abort"' --include=Cargo.toml .; then
    echo 'ci: panic="abort" would break catch_unwind worker isolation' >&2
    exit 1
fi
# Robustness overhead smoke: budget-armed fig06 <= 102% of plain, a
# never-firing hook <= 105% (the bench asserts and exits nonzero).
cargo bench -p amgen-bench --bench fault_overhead
# Generation-cache smoke: fig06 miss path <= 102% of uncached, a hit
# >= 10x faster, warm optimize_order >= 10x faster than the cold
# search (the bench asserts and exits nonzero).
cargo bench -p amgen-bench --bench cache_overhead
# Chip-scale geometry smoke: indexed latch-up >= 5x the linear scan at
# 128 stripes with a fitted growth exponent < 1.5, fig_chip 10x assembly
# p50 < 1 ms, and indexed DRC/extraction byte-identical to the scans on
# the assembled chip (the bench asserts and exits nonzero).
cargo bench -p amgen-bench --bench chip_scale
# Analysis-latency smoke: one full six-pass certification sweep of the
# 11-source corpus (stdlib + examples) <= 5 ms, corpus certifies clean
# with closed top-level fuel bounds (the bench asserts and exits
# nonzero).
cargo bench -p amgen-bench --bench analyze
# Determinism gate in release: optimized builds must produce the same
# byte-identical layouts, diagnostics and cache-transparent reruns the
# debug test suite proved (HashMap-iteration leaks can be
# optimization-sensitive).
cargo test --release -q -p amgen-dsl --test determinism
# Serve gate in release: the load harness replays hundreds of
# concurrent mixed requests (figure workloads + the hostile corpus's
# bombs) against a live server — zero panics, byte-identical
# deterministic payloads, bombs refused at admission with zero fuel
# spent, p99 under the latency budget (the test asserts; the printed
# BENCH_serve line is the number recorded in BENCH_serve.json).
cargo test --release -q -p amgen-serve --test load -- --nocapture | grep -E 'BENCH_serve|test result'
# Service-resilience gate in release: workers killed and wedged
# mid-load (deterministic seeded kill schedule), shutdown while clients
# are still sending, truncated connections, breaker trips, snapshot
# warm restart — every accepted request gets exactly one typed
# response and the process never dies.
cargo test --release -q -p amgen-serve --test chaos_serve
# Chaos soak: >=30 s of mixed load with >=3 injected worker kills and
# one mid-load graceful restart over a cache snapshot; the printed
# BENCH_serve_chaos line is the throughput-under-chaos number recorded
# in BENCH_serve.json.
cargo test --release -q -p amgen-serve --test chaos_serve -- --ignored --nocapture | grep -E 'BENCH_serve_chaos'
# Daemon smoke: one --once session over stdin must serve a figure
# request and refuse a fuel bomb at admission, end to end through the
# real binary — and the exit status must discriminate: 0 all-ok,
# 1 any typed-error response, 2 transport failure.
SERVE_OUT=$(printf '64\n{"id":"s","source":"row = ContactRow(layer = \\"poly\\", W = 10)"}' \
    | cargo run --release -q --bin amgen-serve -- --once) \
    || { echo 'ci: serve smoke: clean session must exit 0' >&2; exit 1; }
echo "$SERVE_OUT" | grep -q '"id":"s".*"ok":true' || { echo 'ci: serve smoke: figure request failed' >&2; exit 1; }
set +e
SERVE_OUT=$(printf '57\n{"id":"b","source":"FOR i = 1 TO 100000\\n  x = i\\nEND\\n"}' \
    | cargo run --release -q --bin amgen-serve -- --once)
SERVE_STATUS=$?
set -e
[ "$SERVE_STATUS" -eq 1 ] || { echo "ci: serve smoke: refused session must exit 1, got $SERVE_STATUS" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q 'ADMISSION_REFUSED' || { echo 'ci: serve smoke: fuel bomb not refused at admission' >&2; exit 1; }
# Wire-contract gate: docs/SERVING.md's error-code table is pinned
# row-for-row to the server's ErrorCode::ALL.
cargo test -q --test doc_protocol
# Documentation gate: every relative link in README/DESIGN/docs must
# resolve (the checker also runs as part of the workspace tests above;
# kept explicit so a docs-only change can run it alone).
cargo test -q --test doc_links
echo "ci: all checks passed"
